#include "propeller/ext_tsp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <unordered_map>

namespace propeller::core {

namespace {

double
edgeScore(uint64_t src_end, uint64_t dst_start, uint64_t weight,
          const ExtTspOptions &opts)
{
    double w = static_cast<double>(weight);
    if (dst_start == src_end)
        return w * opts.fallthroughWeight;
    if (dst_start > src_end) {
        uint64_t d = dst_start - src_end;
        if (d <= opts.forwardDistance) {
            return w * opts.forwardWeight *
                   (1.0 - static_cast<double>(d) / opts.forwardDistance);
        }
        return 0.0;
    }
    uint64_t d = src_end - dst_start;
    if (d <= opts.backwardDistance) {
        return w * opts.backwardWeight *
               (1.0 - static_cast<double>(d) / opts.backwardDistance);
    }
    return 0.0;
}

/**
 * Greedy chain-merging solver state.
 *
 * Incremental scoring invariant: for every live node, nodeChain_ /
 * nodePos_ / nodeOffset_ give its chain, position within the chain's
 * block list and byte offset from the chain start.  Because edgeScore is
 * a function of (dst_start - src_end) only, any rigid translation of a
 * chain preserves all of its internal edge scores; evaluatePair exploits
 * this so a candidate merge is scored by its cross edges plus (for
 * splits) the internal edges whose endpoint distance actually changes.
 */
class Solver
{
  public:
    Solver(const std::vector<LayoutNode> &nodes,
           const std::vector<LayoutEdge> &edges, uint32_t entry,
           const ExtTspOptions &opts, ExtTspStats &stats)
        : nodes_(nodes), edges_(edges), entry_(entry), opts_(opts),
          stats_(stats), nodeChain_(nodes.size()),
          nodePos_(nodes.size(), 0), nodeOffset_(nodes.size(), 0)
    {
        if (opts_.legacyRescore) {
            offsetScratch_.assign(nodes.size(), 0);
            epochOf_.assign(nodes.size(), 0);
        }
    }

    std::vector<uint32_t> solve();

  private:
    struct Chain
    {
        std::vector<uint32_t> blocks;
        uint64_t size = 0; ///< Total byte size of the blocks.
        uint64_t freq = 0;
        double selfScore = 0.0;
        bool alive = true;
        bool hasEntry = false;
        std::vector<uint32_t> internalEdges; ///< Edge indices inside.
    };

    struct Pair
    {
        uint32_t a = 0; ///< Chain ids, a < b.
        uint32_t b = 0;
        std::vector<uint32_t> crossEdges;
        double bestGain = 0.0;
        // Best merge description: order type and split position.
        int mergeType = 0; ///< 0: A+B, 1: B+A, 2: A1 B A2 (split at pos).
        uint32_t splitPos = 0;
        uint64_t version = 0; ///< Bumped per re-evaluation (heap staleness).
    };

    static uint64_t
    pairKey(uint32_t a, uint32_t b)
    {
        if (a > b)
            std::swap(a, b);
        return (static_cast<uint64_t>(a) << 32) | b;
    }

    /** A contiguous run of block indices (legacy rescoring). */
    struct Run
    {
        const uint32_t *ptr;
        size_t len;
    };

    double scoreSequence(std::initializer_list<Run> block_runs,
                         const Pair &pair);

    void evaluatePair(Pair &pair);
    void evaluatePairLegacy(Pair &pair);
    double concatGain(const Chain &first, uint32_t first_id,
                      const std::vector<uint32_t> &cross);
    void applyMerge(Pair &pair);
    std::vector<uint32_t> finalOrder();

    const std::vector<LayoutNode> &nodes_;
    const std::vector<LayoutEdge> &edges_;
    uint32_t entry_;
    const ExtTspOptions &opts_;
    ExtTspStats &stats_;

    std::vector<Chain> chains_;
    std::vector<uint32_t> nodeChain_;
    std::vector<uint32_t> nodePos_;
    std::vector<uint64_t> nodeOffset_;
    std::unordered_map<uint64_t, Pair> pairs_;
    /** Chain id -> pair keys that may involve it (lazily filtered). */
    std::unordered_map<uint32_t, std::vector<uint64_t>> neighbors_;

    // Split-sweep scratch: per-position delta activation buckets.
    std::vector<double> splitAdd_;
    std::vector<double> splitSub_;

    // Scratch offset table with epoch stamping (legacy rescoring only).
    std::vector<uint64_t> offsetScratch_;
    std::vector<uint64_t> epochOf_;
    uint64_t epoch_ = 0;
};

double
Solver::scoreSequence(std::initializer_list<Run> block_runs,
                      const Pair &pair)
{
    ++epoch_;
    uint64_t offset = 0;
    for (const Run &run : block_runs) {
        for (size_t i = 0; i < run.len; ++i) {
            uint32_t n = run.ptr[i];
            offsetScratch_[n] = offset;
            epochOf_[n] = epoch_;
            offset += nodes_[n].size;
        }
    }
    auto scoreEdges = [&](const std::vector<uint32_t> &edge_list) {
        double total = 0.0;
        for (uint32_t e : edge_list) {
            const LayoutEdge &edge = edges_[e];
            assert(epochOf_[edge.from] == epoch_ &&
                   epochOf_[edge.to] == epoch_);
            total += edgeScore(
                offsetScratch_[edge.from] + nodes_[edge.from].size,
                offsetScratch_[edge.to], edge.weight, opts_);
        }
        stats_.candidateEvals += edge_list.size();
        return total;
    };
    double total = scoreEdges(chains_[pair.a].internalEdges) +
                   scoreEdges(chains_[pair.b].internalEdges) +
                   scoreEdges(pair.crossEdges);
    return total;
}

/**
 * Gain of laying out @p first followed by the pair's other chain.  Both
 * chains translate rigidly, so internal scores cancel against the
 * selfScores exactly and the gain is the cross-edge score alone.
 */
double
Solver::concatGain(const Chain &first, uint32_t first_id,
                   const std::vector<uint32_t> &cross)
{
    double gain = 0.0;
    for (uint32_t e : cross) {
        const LayoutEdge &edge = edges_[e];
        uint64_t src = nodeOffset_[edge.from];
        uint64_t dst = nodeOffset_[edge.to];
        // A cross edge has exactly one endpoint in `first`; the other
        // chain starts at first.size.
        if (nodeChain_[edge.from] != first_id)
            src += first.size;
        if (nodeChain_[edge.to] != first_id)
            dst += first.size;
        gain +=
            edgeScore(src + nodes_[edge.from].size, dst, edge.weight, opts_);
    }
    stats_.candidateEvals += cross.size();
    return gain;
}

void
Solver::evaluatePair(Pair &pair)
{
    if (opts_.legacyRescore) {
        evaluatePairLegacy(pair);
        return;
    }
    Chain &x = chains_[pair.a];
    Chain &y = chains_[pair.b];

    pair.bestGain = 0.0;
    pair.mergeType = -1;

    auto consider = [&](int type, uint32_t split, double gain) {
        if (gain > pair.bestGain + 1e-12) {
            pair.bestGain = gain;
            pair.mergeType = type;
            pair.splitPos = split;
        }
    };

    // Type 0: X then Y (disallowed only when Y holds the entry block).
    if (!y.hasEntry)
        consider(0, 0, concatGain(x, pair.a, pair.crossEdges));
    // Type 1: Y then X.
    if (!x.hasEntry)
        consider(1, 0, concatGain(y, pair.b, pair.crossEdges));
    // Type 2: X1 Y X2 (split X); keeps X's head first, so entry is safe
    // as long as Y has no entry.
    if (!y.hasEntry && x.blocks.size() >= 2 &&
        x.blocks.size() <= opts_.maxSplitChainLen) {
        uint32_t len = static_cast<uint32_t>(x.blocks.size());
        // An internal edge of X whose endpoints sit at positions pu != pv
        // is stretched by y.size exactly while the split point lies in
        // (min, max]; its score change is split-independent, so a single
        // sweep with activation buckets scores every split position.
        splitAdd_.assign(len + 1, 0.0);
        splitSub_.assign(len + 1, 0.0);
        for (uint32_t e : x.internalEdges) {
            const LayoutEdge &edge = edges_[e];
            uint32_t pu = nodePos_[edge.from];
            uint32_t pv = nodePos_[edge.to];
            if (pu == pv)
                continue; // Self-loop: distance never changes.
            uint64_t src_end = nodeOffset_[edge.from] + nodes_[edge.from].size;
            uint64_t dst = nodeOffset_[edge.to];
            double before = edgeScore(src_end, dst, edge.weight, opts_);
            double after =
                pu < pv
                    ? edgeScore(src_end, dst + y.size, edge.weight, opts_)
                    : edgeScore(src_end + y.size, dst, edge.weight, opts_);
            stats_.candidateEvals += 2;
            double delta = after - before;
            if (delta == 0.0)
                continue;
            uint32_t lo = std::min(pu, pv);
            uint32_t hi = std::max(pu, pv);
            splitAdd_[lo + 1] += delta;
            splitSub_[hi + 1] += delta;
        }
        double internal_delta = 0.0;
        for (uint32_t i = 1; i < len; ++i) {
            internal_delta += splitAdd_[i];
            internal_delta -= splitSub_[i];
            // Layout is X[0..i) Y X[i..); X1 keeps its offsets, Y starts
            // where block i used to, X2 shifts up by y.size.
            uint64_t y_start = nodeOffset_[x.blocks[i]];
            auto place = [&](uint32_t node) -> uint64_t {
                if (nodeChain_[node] != pair.a)
                    return y_start + nodeOffset_[node];
                return nodeOffset_[node] +
                       (nodePos_[node] >= i ? y.size : 0);
            };
            double cross = 0.0;
            for (uint32_t e : pair.crossEdges) {
                const LayoutEdge &edge = edges_[e];
                cross += edgeScore(place(edge.from) + nodes_[edge.from].size,
                                   place(edge.to), edge.weight, opts_);
            }
            stats_.candidateEvals += pair.crossEdges.size();
            consider(2, i, internal_delta + cross);
        }
    }
}

/** The pre-incremental evaluator: rescan both chains per candidate. */
void
Solver::evaluatePairLegacy(Pair &pair)
{
    Chain &x = chains_[pair.a];
    Chain &y = chains_[pair.b];
    double base = x.selfScore + y.selfScore;

    pair.bestGain = 0.0;
    pair.mergeType = -1;

    auto consider = [&](int type, uint32_t split, double score) {
        double gain = score - base;
        if (gain > pair.bestGain + 1e-12) {
            pair.bestGain = gain;
            pair.mergeType = type;
            pair.splitPos = split;
        }
    };

    Run xr = {x.blocks.data(), x.blocks.size()};
    Run yr = {y.blocks.data(), y.blocks.size()};
    if (!y.hasEntry)
        consider(0, 0, scoreSequence({xr, yr}, pair));
    if (!x.hasEntry)
        consider(1, 0, scoreSequence({yr, xr}, pair));
    if (!y.hasEntry && x.blocks.size() >= 2 &&
        x.blocks.size() <= opts_.maxSplitChainLen) {
        for (uint32_t i = 1; i < x.blocks.size(); ++i) {
            Run x1 = {x.blocks.data(), i};
            Run x2 = {x.blocks.data() + i, x.blocks.size() - i};
            consider(2, i, scoreSequence({x1, yr, x2}, pair));
        }
    }
}

void
Solver::applyMerge(Pair &pair)
{
    ++stats_.merges;
    Chain &x = chains_[pair.a];
    Chain &y = chains_[pair.b];

    std::vector<uint32_t> merged;
    merged.reserve(x.blocks.size() + y.blocks.size());
    switch (pair.mergeType) {
      case 0:
        merged = x.blocks;
        merged.insert(merged.end(), y.blocks.begin(), y.blocks.end());
        break;
      case 1:
        merged = y.blocks;
        merged.insert(merged.end(), x.blocks.begin(), x.blocks.end());
        break;
      case 2:
        merged.assign(x.blocks.begin(), x.blocks.begin() + pair.splitPos);
        merged.insert(merged.end(), y.blocks.begin(), y.blocks.end());
        merged.insert(merged.end(), x.blocks.begin() + pair.splitPos,
                      x.blocks.end());
        break;
      default:
        assert(false && "applying a pair with no profitable merge");
    }

    x.selfScore = x.selfScore + y.selfScore + pair.bestGain;
    x.blocks = std::move(merged);
    x.size += y.size;
    x.freq += y.freq;
    x.hasEntry = x.hasEntry || y.hasEntry;
    x.internalEdges.insert(x.internalEdges.end(),
                           y.internalEdges.begin(), y.internalEdges.end());
    x.internalEdges.insert(x.internalEdges.end(), pair.crossEdges.begin(),
                           pair.crossEdges.end());
    y.alive = false;
    uint64_t offset = 0;
    for (uint32_t i = 0; i < x.blocks.size(); ++i) {
        uint32_t n = x.blocks[i];
        nodeChain_[n] = pair.a;
        nodePos_[n] = i;
        nodeOffset_[n] = offset;
        offset += nodes_[n].size;
    }
}

std::vector<uint32_t>
Solver::finalOrder()
{
    // Entry chain first, then by decreasing execution density.
    std::vector<uint32_t> alive;
    for (uint32_t c = 0; c < chains_.size(); ++c) {
        if (chains_[c].alive)
            alive.push_back(c);
    }
    std::sort(alive.begin(), alive.end(), [&](uint32_t a, uint32_t b) {
        const Chain &ca = chains_[a];
        const Chain &cb = chains_[b];
        if (ca.hasEntry != cb.hasEntry)
            return ca.hasEntry;
        double da = static_cast<double>(ca.freq) /
                    static_cast<double>(std::max<uint64_t>(ca.size, 1));
        double db = static_cast<double>(cb.freq) /
                    static_cast<double>(std::max<uint64_t>(cb.size, 1));
        if (da != db)
            return da > db;
        return a < b;
    });

    std::vector<uint32_t> order;
    order.reserve(nodes_.size());
    for (uint32_t c : alive) {
        for (uint32_t n : chains_[c].blocks)
            order.push_back(n);
    }
    return order;
}

std::vector<uint32_t>
Solver::solve()
{
    size_t n = nodes_.size();
    chains_.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        Chain &chain = chains_[i];
        chain.blocks = {i};
        chain.size = nodes_[i].size;
        chain.freq = nodes_[i].freq;
        chain.hasEntry = (i == entry_);
        nodeChain_[i] = i;
    }

    // Distribute edges: self edges are internal, the rest form pairs.
    for (uint32_t e = 0; e < edges_.size(); ++e) {
        const LayoutEdge &edge = edges_[e];
        if (edge.from == edge.to) {
            chains_[edge.from].internalEdges.push_back(e);
            // Self-loop score with the block alone.
            chains_[edge.from].selfScore += edgeScore(
                nodes_[edge.from].size, 0, edge.weight, opts_);
            continue;
        }
        uint64_t key = pairKey(edge.from, edge.to);
        auto [it, inserted] = pairs_.try_emplace(key);
        Pair &pair = it->second;
        pair.a = std::min(edge.from, edge.to);
        pair.b = std::max(edge.from, edge.to);
        pair.crossEdges.push_back(e);
        if (inserted) {
            neighbors_[pair.a].push_back(key);
            neighbors_[pair.b].push_back(key);
        }
    }

    // Initial evaluation of all pairs.
    using HeapItem = std::tuple<double, uint64_t, uint64_t>;
    std::priority_queue<HeapItem> heap;
    for (auto &[key, pair] : pairs_) {
        evaluatePair(pair);
        if (!opts_.referenceSolver && pair.bestGain > 0)
            heap.push({pair.bestGain, key, pair.version});
    }

    while (true) {
        Pair *best = nullptr;
        if (opts_.referenceSolver) {
            // Reference retrieval: full scan per merge step, picking the
            // maximum (gain, key) — the exact tuple order the lazy heap
            // pops — so both paths make identical merge decisions.
            ++stats_.retrievals;
            uint64_t best_key = 0;
            for (auto &[key, pair] : pairs_) {
                if (pair.bestGain <= 0)
                    continue;
                if (!best || pair.bestGain > best->bestGain ||
                    (pair.bestGain == best->bestGain && key > best_key)) {
                    best = &pair;
                    best_key = key;
                }
            }
            if (!best)
                break;
        } else {
            // Logarithmic retrieval with lazy invalidation: entries are
            // stamped with the pair's version at push time; a pop whose
            // version no longer matches (or whose pair was re-keyed away)
            // is discarded.
            while (!heap.empty()) {
                auto [gain, key, version] = heap.top();
                heap.pop();
                ++stats_.retrievals;
                ++stats_.heapPops;
                auto it = pairs_.find(key);
                if (it == pairs_.end() || it->second.version != version ||
                    it->second.bestGain <= 0) {
                    ++stats_.staleSkips;
                    continue;
                }
                best = &it->second;
                break;
            }
            if (!best)
                break;
        }

        uint32_t into = best->a;
        uint32_t from = best->b;
        applyMerge(*best);
        pairs_.erase(pairKey(into, from));

        // Re-route pairs touching `from` into `into`, using the adjacency
        // lists (which may contain stale keys; filter on use).
        std::vector<uint64_t> from_keys = std::move(neighbors_[from]);
        neighbors_.erase(from);
        for (uint64_t key : from_keys) {
            auto it = pairs_.find(key);
            if (it == pairs_.end())
                continue;
            Pair moved = std::move(it->second);
            if (moved.a != from && moved.b != from)
                continue; // Stale adjacency entry.
            pairs_.erase(it);
            uint32_t other = (moved.a == from) ? moved.b : moved.a;
            if (other == into)
                continue; // Became internal (defensive).
            uint64_t new_key = pairKey(into, other);
            auto [tit, inserted] = pairs_.try_emplace(new_key);
            Pair &target = tit->second;
            target.a = std::min(into, other);
            target.b = std::max(into, other);
            target.crossEdges.insert(target.crossEdges.end(),
                                     moved.crossEdges.begin(),
                                     moved.crossEdges.end());
            if (inserted) {
                neighbors_[target.a].push_back(new_key);
                neighbors_[target.b].push_back(new_key);
            }
        }
        // Re-evaluate every pair still touching `into`.
        std::vector<uint64_t> &into_keys = neighbors_[into];
        std::vector<uint64_t> fresh;
        fresh.reserve(into_keys.size());
        for (uint64_t key : into_keys) {
            auto it = pairs_.find(key);
            if (it == pairs_.end())
                continue;
            Pair &pair = it->second;
            if (pair.a != into && pair.b != into)
                continue; // Stale.
            fresh.push_back(key);
            ++pair.version;
            evaluatePair(pair);
            if (!opts_.referenceSolver && pair.bestGain > 0)
                heap.push({pair.bestGain, key, pair.version});
        }
        into_keys = std::move(fresh);
    }

    std::vector<uint32_t> order = finalOrder();
    stats_.finalScore = extTspScore(nodes_, edges_, order, opts_);
    return order;
}

} // namespace

double
extTspScore(const std::vector<LayoutNode> &nodes,
            const std::vector<LayoutEdge> &edges,
            const std::vector<uint32_t> &order, const ExtTspOptions &opts)
{
    std::vector<uint64_t> offset(nodes.size(), 0);
    uint64_t cursor = 0;
    for (uint32_t n : order) {
        offset[n] = cursor;
        cursor += nodes[n].size;
    }
    double total = 0.0;
    for (const auto &edge : edges) {
        total += edgeScore(offset[edge.from] + nodes[edge.from].size,
                           offset[edge.to], edge.weight, opts);
    }
    return total;
}

std::vector<uint32_t>
extTspOrder(const std::vector<LayoutNode> &nodes,
            const std::vector<LayoutEdge> &edges, uint32_t entry,
            const ExtTspOptions &opts, ExtTspStats *stats_out)
{
    assert(entry < nodes.size());
    ExtTspStats local;
    Solver solver(nodes, edges, entry, opts, local);
    std::vector<uint32_t> order = solver.solve();
    if (stats_out)
        *stats_out = local;
    return order;
}

} // namespace propeller::core
