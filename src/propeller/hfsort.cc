#include "propeller/hfsort.h"

#include <algorithm>
#include <unordered_map>

namespace propeller::core {

std::vector<uint32_t>
hfsortOrder(const std::vector<HfsortNode> &nodes,
            const std::vector<HfsortArc> &arcs, const HfsortOptions &opts)
{
    size_t n = nodes.size();

    // For each callee: its heaviest caller.
    std::vector<int64_t> best_caller(n, -1);
    std::vector<uint64_t> best_weight(n, 0);
    for (const auto &arc : arcs) {
        if (arc.caller == arc.callee)
            continue;
        if (arc.weight > best_weight[arc.callee]) {
            best_weight[arc.callee] = arc.weight;
            best_caller[arc.callee] = arc.caller;
        }
    }

    struct Cluster
    {
        std::vector<uint32_t> funcs;
        uint64_t size = 0;
        uint64_t samples = 0;
        bool frozen = false;
    };
    std::vector<Cluster> clusters(n);
    std::vector<uint32_t> cluster_of(n);
    for (uint32_t i = 0; i < n; ++i) {
        clusters[i].funcs = {i};
        clusters[i].size = std::max<uint64_t>(nodes[i].size, 1);
        clusters[i].samples = nodes[i].samples;
        cluster_of[i] = i;
    }

    // Process by decreasing hotness.
    std::vector<uint32_t> by_heat(n);
    for (uint32_t i = 0; i < n; ++i)
        by_heat[i] = i;
    std::sort(by_heat.begin(), by_heat.end(), [&](uint32_t a, uint32_t b) {
        if (nodes[a].samples != nodes[b].samples)
            return nodes[a].samples > nodes[b].samples;
        return a < b;
    });

    for (uint32_t f : by_heat) {
        if (nodes[f].samples == 0)
            break; // Cold tail; never merged.
        int64_t caller = best_caller[f];
        if (caller < 0)
            continue;
        if (best_weight[f] <
            static_cast<uint64_t>(opts.arcThreshold *
                                  static_cast<double>(nodes[f].samples))) {
            continue;
        }
        uint32_t cf = cluster_of[f];
        uint32_t cc = cluster_of[static_cast<uint32_t>(caller)];
        if (cf == cc)
            continue;
        Cluster &dst = clusters[cc];
        Cluster &src = clusters[cf];
        if (dst.size + src.size > opts.maxClusterSize)
            continue;
        // The callee's cluster must start with the callee (C3 invariant:
        // functions are appended in call order).
        if (src.funcs.front() != f)
            continue;
        for (uint32_t member : src.funcs) {
            cluster_of[member] = cc;
            dst.funcs.push_back(member);
        }
        dst.size += src.size;
        dst.samples += src.samples;
        src.funcs.clear();
    }

    // Emit clusters by decreasing density.
    std::vector<uint32_t> alive;
    for (uint32_t c = 0; c < n; ++c) {
        if (!clusters[c].funcs.empty())
            alive.push_back(c);
    }
    std::sort(alive.begin(), alive.end(), [&](uint32_t a, uint32_t b) {
        const Cluster &ca = clusters[a];
        const Cluster &cb = clusters[b];
        double da = static_cast<double>(ca.samples) /
                    static_cast<double>(ca.size);
        double db = static_cast<double>(cb.samples) /
                    static_cast<double>(cb.size);
        if (da != db)
            return da > db;
        return a < b;
    });

    std::vector<uint32_t> order;
    order.reserve(n);
    for (uint32_t c : alive) {
        for (uint32_t f : clusters[c].funcs)
            order.push_back(f);
    }
    return order;
}

} // namespace propeller::core
