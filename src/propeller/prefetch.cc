#include "propeller/prefetch.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace propeller::core {

PrefetchMap
computePrefetchDirectives(const profile::MissProfile &misses,
                          const PrefetchOptions &opts)
{
    std::vector<std::pair<uint64_t, uint16_t>> ranked;
    ranked.reserve(misses.siteMisses.size());
    for (const auto &[site, count] : misses.siteMisses) {
        if (count >= opts.minMissSamples)
            ranked.push_back({count, site});
    }
    std::sort(ranked.rbegin(), ranked.rend());
    if (ranked.size() > opts.maxSites)
        ranked.resize(opts.maxSites);

    PrefetchMap map;
    for (const auto &[count, site] : ranked)
        map.emplace(site, opts.lookahead);
    return map;
}

std::string
serializePrefetchDirectives(const PrefetchMap &map)
{
    std::ostringstream os;
    for (const auto &[site, lookahead] : map)
        os << site << " " << static_cast<unsigned>(lookahead) << "\n";
    return os.str();
}

bool
parsePrefetchDirectives(const std::string &text, PrefetchMap &out)
{
    PrefetchMap result;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        unsigned site = 0;
        unsigned lookahead = 0;
        if (!(ls >> site >> lookahead) || site > 0xffff ||
            lookahead > 0xff) {
            return false;
        }
        std::string rest;
        if (ls >> rest)
            return false;
        result.emplace(static_cast<uint16_t>(site),
                       static_cast<uint8_t>(lookahead));
    }
    out = std::move(result);
    return true;
}

} // namespace propeller::core
