#ifndef PROPELLER_PROPELLER_LAYOUT_H
#define PROPELLER_PROPELLER_LAYOUT_H

/**
 * @file
 * Code layout computation: turns the whole-program DCFG into per-function
 * basic block cluster directives (cc_prof) and a global symbol order
 * (ld_prof).
 *
 * Two strategies, as in the paper:
 *
 *  - **intra-procedural** (section 3.3/4.6, the mode evaluated in the
 *    paper): Ext-TSP orders each function's hot blocks independently; cold
 *    blocks split into a ".cold" cluster; the global order is C3/hfsort
 *    over hot function primary sections, cold clusters drift to the end;
 *
 *  - **inter-procedural** (section 4.7): Ext-TSP runs once over the whole
 *    program graph including call edges; the resulting global chain is cut
 *    into per-function section runs, which lets a multi-modal function be
 *    split around its callees.
 */

#include <memory>
#include <string>
#include <vector>

#include "propeller/addr_map_index.h"
#include "propeller/dcfg.h"
#include "propeller/directives.h"
#include "propeller/ext_tsp.h"

namespace propeller::core {

/** Layout strategy options. */
struct LayoutOptions
{
    /** Extract cold blocks into ".cold" clusters (paper section 4.6). */
    bool splitFunctions = true;

    /**
     * A block is hot if its frequency exceeds this fraction of the
     * function's hottest block (0 = any sampled block is hot).
     */
    double hotThresholdFraction = 0.0;

    /** Use inter-procedural layout (section 4.7). */
    bool interProcedural = false;

    /**
     * Inter-procedural only: fold non-primary section runs shorter than
     * this many blocks back into the primary (splitting is only worth a
     * section "when profitable", section 3.4).  Set to 1 to keep every
     * run.
     */
    uint32_t interProcMinRunBlocks = 3;

    /** Reorder hot blocks with Ext-TSP (off = keep original order). */
    bool reorderBlocks = true;

    /**
     * Use the full-scan reference retrieval in the Ext-TSP solver instead
     * of the lazy heap (see ExtTspOptions::referenceSolver).  Both paths
     * must produce byte-identical cc_prof/ld_prof; this knob exists so
     * tests can prove it end to end.
     *
     * Note there is deliberately no thread knob here: concurrency is
     * owned by the scheduler/workflow layer (`WorkloadConfig::jobs`,
     * CLI `--jobs`) and passed as an explicit `jobs` argument to the
     * entry points below, so one setting governs every parallel stage.
     */
    bool referenceSolver = false;

    ExtTspOptions extTsp;
};

/** Result of layout computation. */
struct LayoutResult
{
    CcProfile ccProf;
    LdProfile ldProf;

    /** Functions whose objects must be re-generated in Phase 4. */
    std::vector<std::string> hotFunctions;

    /** Aggregate Ext-TSP statistics. */
    ExtTspStats extTspStats;
};

/** Per-function product of the intra-procedural layout loop. */
struct FunctionLayout
{
    codegen::ClusterSpec spec;
    ExtTspStats stats;
};

/**
 * Fingerprint of every LayoutOptions field that can change a
 * per-function layout (doubles folded by bit pattern).  Part of the
 * layout memoization cache key: two runs with the same CFG, counts and
 * fingerprint must produce the same FunctionLayout.
 */
uint64_t layoutOptionsFingerprint(const LayoutOptions &opts);

/**
 * The layout-memoization cache key's function leg: name, the target's
 * whole-function hash plus its full block list (id, size, flags), and
 * the function's DCFG shape and counts.  @p funcIndex is the function's
 * index in @p index, or -1 when the function has no address-map entry
 * (the index legs are skipped then).  Combined with
 * layoutOptionsFingerprint() this is the exact-match memo key: any
 * change to the function's code or counts changes it.
 */
uint64_t layoutMemoFingerprint(const FunctionDcfg &fn,
                               const AddrMapIndex &index, int funcIndex);

/**
 * Digest of exactly the inputs layoutFunction() reads: the function's
 * DCFG (entry node; node ids, sizes, counts; edge endpoints and
 * weights) and the address-map block-id *order* (which cold blocks
 * exist and where) — deliberately *not* the whole-function hash, block
 * byte sizes or flags, none of which the layout pass consumes.  Two
 * functions with equal digests (and equal option fingerprints) produce
 * bit-identical FunctionLayouts, so a digest hit against an older
 * binary version's cache entry is a sound reuse: this is the alias key
 * the stale-matcher-primed layout-cache lookups use for functions whose
 * code drifted only in places layout never reads (e.g. edits inside
 * never-sampled blocks).
 */
uint64_t layoutInputDigest(const FunctionDcfg &fn,
                           const AddrMapIndex &index, int funcIndex);

/**
 * Lossless byte encoding of a FunctionLayout (cluster spec plus the
 * solver stats, doubles by bit pattern) for the layout memoization
 * tier of the artifact cache: a decoded warm hit reproduces the cold
 * run's merge inputs exactly, so cc_prof/ld_prof and the aggregated
 * ExtTspStats stay byte-identical.
 */
std::vector<uint8_t> encodeFunctionLayout(const FunctionLayout &layout);

/** Decode; returns false on any truncation or trailing bytes. */
bool decodeFunctionLayout(const std::vector<uint8_t> &bytes,
                          FunctionLayout &out);

/**
 * Decomposed intra-procedural layout: each function's Ext-TSP problem is
 * independent, so callers (the task-graph relink engine, the barrier
 * parallelFor loop) can run `layoutFunction` per function on any thread
 * and in any order, then `merge` the slots in function order.  The
 * merged result is byte-identical to a serial run by construction.
 *
 * Only valid for the intra-procedural strategy; the inter-procedural
 * chain is a single global problem and stays monolithic (computeLayout).
 */
class LayoutContext
{
  public:
    LayoutContext(const WholeProgramDcfg &dcfg, const AddrMapIndex &index,
                  const LayoutOptions &opts);
    ~LayoutContext();
    LayoutContext(const LayoutContext &) = delete;
    LayoutContext &operator=(const LayoutContext &) = delete;

    size_t functionCount() const;

    /** Lay out one function. Thread-safe across distinct @p f. */
    FunctionLayout layoutFunction(size_t f) const;

    /**
     * Global symbol order (C3/hfsort over the call graph).  Depends only
     * on the DCFG, not on any per-function layout, so it can run
     * concurrently with the layoutFunction fan-out.
     */
    LdProfile globalOrder() const;

    /** Merge per-function slots + global order, in function order. */
    LayoutResult merge(std::vector<FunctionLayout> slots,
                       LdProfile order) const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * Compute the layout from a DCFG and the metadata binary's address map.
 * @p jobs bounds worker threads for the per-function loop (0 =
 * hardware concurrency); output is byte-identical at any value.
 */
LayoutResult computeLayout(const WholeProgramDcfg &dcfg,
                           const AddrMapIndex &index,
                           const LayoutOptions &opts = {},
                           unsigned jobs = 0);

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_LAYOUT_H
