#ifndef PROPELLER_PROPELLER_ADDR_MAP_INDEX_H
#define PROPELLER_PROPELLER_ADDR_MAP_INDEX_H

/**
 * @file
 * Address-to-basic-block resolution (paper section 3.3).
 *
 * Builds a sorted interval index over the executable's BB address map so
 * that LBR sample addresses can be mapped to (function, machine basic
 * block) pairs in O(log n) — the disassembly-free alternative to BOLT's
 * address resolution.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "linker/executable.h"

namespace propeller::core {

/** Resolution result: which block contains an address. */
struct BlockRef
{
    uint32_t funcIndex = 0; ///< Index into AddrMapIndex::functionNames().
    uint32_t bbId = 0;
    uint64_t blockStart = 0;
    uint64_t blockEnd = 0;
    uint8_t flags = 0;

    /** Stable block fingerprint (0 when the binary has v1 metadata). */
    uint64_t hash = 0;

    /** Position in the global layout order (for next()). */
    uint32_t intervalIndex = 0;

    bool operator==(const BlockRef &) const = default;
};

/**
 * Sorted interval index over an executable's BB address map.
 *
 * Construction sanitizes the metadata: a function whose map is
 * internally inconsistent — duplicate block ids, blocks outside the text
 * image, overlapping blocks — is dropped from the index entirely
 * (quarantined), so its samples simply go unmapped and the function
 * keeps its baseline layout, instead of feeding the layout pass garbage
 * intervals.  Honest metadata is indexed unchanged.
 */
class AddrMapIndex
{
  public:
    explicit AddrMapIndex(const linker::Executable &exe);

    /** Functions dropped by construction-time sanitation, sorted. */
    const std::vector<std::string> &quarantined() const
    {
        return quarantined_;
    }

    /** Resolve @p addr to the block containing it. */
    std::optional<BlockRef> lookup(uint64_t addr) const;

    /** Block following @p ref in address order (for range walks). */
    std::optional<BlockRef> next(const BlockRef &ref) const;

    /** All blocks of a function, in address order. */
    std::vector<BlockRef> blocksOf(uint32_t func_index) const;

    /** Resolve a specific (function, block id) pair. */
    std::optional<BlockRef> block(uint32_t func_index, uint32_t bb_id) const;

    const std::vector<std::string> &functionNames() const
    {
        return functionNames_;
    }

    /** Find a function index by name; -1 if the binary has no such map. */
    int findFunction(const std::string &name) const;

    /** Whole-function fingerprint (0 when the binary has v1 metadata). */
    uint64_t functionHash(uint32_t func_index) const
    {
        return functionHashes_[func_index];
    }

    /**
     * Static successor block ids of (function, block), from the v2
     * address map; empty for v1 metadata or unknown blocks.
     */
    const std::vector<uint32_t> &successors(uint32_t func_index,
                                            uint32_t bb_id) const;

    /** Entry block id of function @p func_index (lowest block address of
     *  the primary range is not necessarily the entry; this is the block
     *  at the function symbol address). */
    uint32_t entryBlock(uint32_t func_index) const
    {
        return entryBlocks_[func_index];
    }

    size_t blockCount() const { return intervals_.size(); }

    /** Modelled in-memory footprint in bytes. */
    uint64_t
    footprint() const
    {
        return intervals_.size() * sizeof(Interval) +
               functionNames_.size() * 48;
    }

  private:
    struct Interval
    {
        uint64_t start;
        uint64_t end;
        uint32_t funcIndex;
        uint32_t bbId;
        uint8_t flags;
        uint64_t hash;
    };

    static BlockRef toRef(const Interval &iv);

    std::vector<Interval> intervals_; ///< Sorted by start address.
    std::vector<std::string> functionNames_;
    std::vector<std::string> quarantined_;
    std::vector<uint32_t> entryBlocks_;
    std::vector<uint64_t> functionHashes_;
    /** Per function: interval indices in address order. */
    std::vector<std::vector<uint32_t>> funcIntervals_;
    /** Per function: block id -> static successor ids (v2 metadata). */
    std::vector<std::unordered_map<uint32_t, std::vector<uint32_t>>>
        funcSuccs_;
};

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_ADDR_MAP_INDEX_H
