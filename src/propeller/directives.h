#ifndef PROPELLER_PROPELLER_DIRECTIVES_H
#define PROPELLER_PROPELLER_DIRECTIVES_H

/**
 * @file
 * The two Phase-3 output artifacts (paper Figure 1):
 *
 *  - cc_prof.txt — per-function basic block cluster directives consumed by
 *    the distributed codegen backends in Phase 4;
 *  - ld_prof.txt — the global symbol ordering consumed by the final
 *    relink action.
 *
 * Text formats follow the real Propeller's cluster-profile syntax:
 *
 *   !fn_00012           # function line
 *   !!0 3 5 7           # one cluster per '!!' line, block ids in order
 *   !!cold 2 4          # the cold cluster
 *
 * ld_prof.txt is one symbol per line.
 */

#include <string>
#include <vector>

#include "codegen/codegen.h"

namespace propeller::core {

/** cc_prof.txt: cluster directives for every hot function. */
struct CcProfile
{
    codegen::ClusterMap clusters;

    std::string serialize() const;

    /**
     * Parse the text form.
     * @return false on malformed input (partial results are discarded).
     */
    static bool parse(const std::string &text, CcProfile &out);

    /** Serialized size in bytes (build-system artifact accounting). */
    uint64_t sizeInBytes() const { return serialize().size(); }
};

/** ld_prof.txt: global symbol order for the relink. */
struct LdProfile
{
    std::vector<std::string> symbolOrder;

    std::string serialize() const;
    static bool parse(const std::string &text, LdProfile &out);

    uint64_t sizeInBytes() const { return serialize().size(); }
};

} // namespace propeller::core

#endif // PROPELLER_PROPELLER_DIRECTIVES_H
