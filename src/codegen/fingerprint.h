#ifndef PROPELLER_CODEGEN_FINGERPRINT_H
#define PROPELLER_CODEGEN_FINGERPRINT_H

/**
 * @file
 * Stable basic-block fingerprints for stale-profile matching.
 *
 * A profile collected on last week's production binary must be applicable
 * to this week's build (the warehouse-scale release cycle, paper section
 * 2.2), so every block in the BB address map carries a fingerprint that is
 * stable under everything Propeller itself changes — block layout,
 * cluster assignment, branch relaxation, section placement — while being
 * sensitive to real source drift.  Inputs per block:
 *
 *  - the **opcode stream**: instruction kinds with their operands
 *    (register, immediate, callee name for calls);
 *  - **layout-invariant branch ids**: conditional branches contribute
 *    their program-unique branchId, never their targets (target block ids
 *    are positional and renumber under edits);
 *  - a **1-hop CFG neighborhood hash**: the opcode-stream hashes of the
 *    block's static successors (in terminator order) and predecessors (in
 *    original block order), so a block whose body is unchanged but whose
 *    surroundings were edited ranks below an exact structural match.
 *
 * The per-function hash combines every block fingerprint in original
 * block order; equality means the whole CFG is unchanged and a stale
 * profile transfers by block id alone.
 */

#include <cstdint>
#include <unordered_map>

#include "ir/ir.h"

namespace propeller::codegen {

/** Fingerprints of one function's blocks. */
struct FunctionFingerprint
{
    uint64_t functionHash = 0;

    /** Block id -> stable fingerprint. */
    std::unordered_map<uint32_t, uint64_t> blockHash;
};

/** Compute fingerprints for every block of @p fn (pure, deterministic). */
FunctionFingerprint fingerprintFunction(const ir::Function &fn);

} // namespace propeller::codegen

#endif // PROPELLER_CODEGEN_FINGERPRINT_H
