#include "codegen/codegen.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "codegen/fingerprint.h"
#include "support/hash.h"

namespace propeller::codegen {

using elf::BbEntry;
using elf::BbRange;
using elf::BlockMark;
using elf::BranchSite;
using elf::FrameDescriptor;
using elf::FunctionAddrMap;
using elf::ObjectFile;
using elf::Section;
using elf::SectionType;
using elf::Symbol;
using elf::SymbolKind;
using elf::TextPiece;

namespace {

/** Planned text section: symbol plus ordered blocks. */
struct SectionPlan
{
    std::string symbol;
    bool isPrimary = false;
    uint32_t alignment = 1;
    std::vector<const ir::BasicBlock *> blocks;
};

std::vector<SectionPlan>
planSections(const ir::Function &fn, const Options &opts)
{
    std::vector<SectionPlan> plans;

    auto blockById = [&](uint32_t id) -> const ir::BasicBlock * {
        const ir::BasicBlock *bb = fn.findBlock(id);
        assert(bb && "cluster spec references unknown block");
        return bb;
    };

    const ClusterSpec *spec = nullptr;
    if (opts.bbSections == BbSectionsMode::Clusters && opts.clusters &&
        !fn.isHandAsm) {
        auto it = opts.clusters->find(fn.name);
        if (it != opts.clusters->end())
            spec = &it->second;
    }

    if (spec) {
        assert(!spec->clusters.empty() && !spec->clusters[0].empty());
        assert(spec->clusters[0][0] == fn.entry().id &&
               "primary cluster must start with the entry block");
#ifndef NDEBUG
        std::unordered_set<uint32_t> seen;
        size_t listed = 0;
        for (const auto &cluster : spec->clusters) {
            for (uint32_t id : cluster) {
                assert(seen.insert(id).second &&
                       "block listed in two clusters");
                ++listed;
            }
        }
        assert(listed == fn.blocks.size() &&
               "cluster spec must cover every block exactly once");
#endif
        size_t numeric = 0;
        for (size_t c = 0; c < spec->clusters.size(); ++c) {
            SectionPlan plan;
            bool is_cold = static_cast<int>(c) == spec->coldIndex;
            if (c == 0) {
                plan.symbol = fn.name;
                plan.isPrimary = true;
                plan.alignment = opts.functionAlignment;
            } else if (is_cold) {
                plan.symbol = fn.name + ".cold";
                plan.alignment = 4;
            } else {
                plan.symbol = fn.name + "." + std::to_string(++numeric);
                plan.alignment = 4;
            }
            for (uint32_t id : spec->clusters[c])
                plan.blocks.push_back(blockById(id));
            plans.push_back(std::move(plan));
        }
        return plans;
    }

    if (opts.bbSections == BbSectionsMode::All && !fn.isHandAsm) {
        for (size_t i = 0; i < fn.blocks.size(); ++i) {
            SectionPlan plan;
            if (i == 0) {
                plan.symbol = fn.name;
                plan.isPrimary = true;
                plan.alignment = opts.functionAlignment;
            } else {
                plan.symbol =
                    fn.name + ".b" + std::to_string(fn.blocks[i]->id);
                plan.alignment = 1;
            }
            plan.blocks.push_back(fn.blocks[i].get());
            plans.push_back(std::move(plan));
        }
        return plans;
    }

    // Function sections: one section, original block order.
    SectionPlan plan;
    plan.symbol = fn.name;
    plan.isPrimary = true;
    plan.alignment = opts.functionAlignment;
    for (const auto &bb : fn.blocks)
        plan.blocks.push_back(bb.get());
    plans.push_back(std::move(plan));
    return plans;
}

/** Encode a non-control-flow IR instruction into @p out. */
void
encodeBodyInst(const ir::Inst &inst, const Options &opts,
               std::vector<uint8_t> &out)
{
    if (inst.kind == ir::InstKind::Load && opts.prefetches) {
        auto it = opts.prefetches->find(static_cast<uint16_t>(inst.imm));
        if (it != opts.prefetches->end()) {
            isa::Instruction pf;
            pf.op = isa::Opcode::Prefetch;
            pf.imm = it->first;
            pf.reg = it->second;
            pf.encode(out);
        }
    }
    isa::Instruction m;
    switch (inst.kind) {
      case ir::InstKind::Work:
        m.op = isa::Opcode::Alu;
        break;
      case ir::InstKind::WorkWide:
        m.op = isa::Opcode::AluWide;
        break;
      case ir::InstKind::Load:
        m.op = isa::Opcode::Load;
        break;
      case ir::InstKind::Store:
        m.op = isa::Opcode::Store;
        break;
      default:
        assert(false && "not a body instruction");
    }
    m.reg = inst.reg;
    m.imm = inst.imm;
    m.encode(out);
}

uint8_t
blockFlags(const ir::BasicBlock &bb)
{
    uint8_t flags = 0;
    if (bb.isLandingPad)
        flags |= elf::kBbLandingPad;
    const ir::Inst &term = bb.terminator();
    if (term.kind == ir::InstKind::Ret)
        flags |= elf::kBbReturns;
    if (term.kind == ir::InstKind::CondBr)
        flags |= elf::kBbFallThrough;
    return flags;
}

/** Bytes of embedded non-code data for hand-written assembly sections. */
std::vector<uint8_t>
handAsmDataBlob(const std::string &fn_name)
{
    uint64_t h = fnv1a(fn_name);
    size_t len = 16 + (h % 48);
    std::vector<uint8_t> blob(len);
    for (size_t i = 0; i < len; ++i) {
        // Bytes from the undefined opcode space so linear disassembly of
        // the blob fails (paper sections 1.1 and 5.8).
        blob[i] = 0x30 + static_cast<uint8_t>((h >> (i % 8)) & 0x0f);
    }
    return blob;
}

/** Emit the machine code for one planned section of @p fn. */
Section
emitSection(const ir::Function &fn, const SectionPlan &plan,
            const std::unordered_map<uint32_t, std::string> &section_of,
            const Options &opts)
{
    Section sec;
    sec.name = ".text." + plan.symbol;
    sec.type = SectionType::Text;
    sec.alignment = plan.alignment;
    sec.isHandAsm = fn.isHandAsm;

    auto nextInSection = [&](size_t i) -> const ir::BasicBlock * {
        return i + 1 < plan.blocks.size() ? plan.blocks[i + 1] : nullptr;
    };

    // Landing-pad sections must not begin with the landing pad itself
    // (paper section 4.5): insert a nop so the pad has a nonzero offset.
    if (!plan.blocks.empty() && plan.blocks.front()->isLandingPad) {
        TextPiece pad;
        isa::Instruction nop;
        nop.op = isa::Opcode::Nop;
        nop.encode(pad.bytes);
        sec.pieces.push_back(std::move(pad));
    }

    for (size_t i = 0; i < plan.blocks.size(); ++i) {
        const ir::BasicBlock &bb = *plan.blocks[i];
        TextPiece piece;
        piece.block = BlockMark{bb.id, blockFlags(bb)};

        auto flush = [&](std::optional<BranchSite> site) {
            piece.site = std::move(site);
            sec.pieces.push_back(std::move(piece));
            piece = TextPiece{};
        };

        for (size_t k = 0; k + 1 < bb.insts.size(); ++k) {
            const ir::Inst &inst = bb.insts[k];
            if (inst.kind == ir::InstKind::Call) {
                BranchSite call;
                call.op = isa::Opcode::Call;
                call.targetSymbol = inst.callee;
                call.targetBb = elf::kSectionStart;
                flush(std::move(call));
            } else {
                encodeBodyInst(inst, opts, piece.bytes);
            }
        }

        const ir::Inst &term = bb.terminator();
        const ir::BasicBlock *next = nextInSection(i);
        switch (term.kind) {
          case ir::InstKind::Ret: {
            isa::Instruction ret;
            ret.op = isa::Opcode::Ret;
            ret.encode(piece.bytes);
            flush(std::nullopt);
            break;
          }
          case ir::InstKind::Br: {
            if (next && next->id == term.target) {
                // Intra-section fall through; no instruction needed.
                flush(std::nullopt);
            } else {
                BranchSite jmp;
                jmp.op = isa::Opcode::JmpNear;
                jmp.targetSymbol = section_of.at(term.target);
                jmp.targetBb = term.target;
                jmp.isFallThrough = true;
                flush(std::move(jmp));
            }
            break;
          }
          case ir::InstKind::CondBr: {
            assert(term.trueTarget != term.falseTarget &&
                   "degenerate conditional branch");
            BranchSite jcc;
            jcc.op = isa::Opcode::JccNear;
            jcc.bias = term.bias;
            jcc.branchId = term.branchId;
            if (term.periodic)
                jcc.flags |= isa::kJccPeriodic;
            uint32_t jcc_target;
            std::optional<uint32_t> explicit_fall;
            if (next && next->id == term.falseTarget) {
                jcc_target = term.trueTarget;
            } else if (next && next->id == term.trueTarget) {
                jcc.flags |= isa::kJccInvert;
                jcc_target = term.falseTarget;
            } else {
                jcc_target = term.trueTarget;
                explicit_fall = term.falseTarget;
            }
            jcc.targetSymbol = section_of.at(jcc_target);
            jcc.targetBb = jcc_target;
            flush(std::move(jcc));
            if (explicit_fall) {
                // Explicit fall-through jump, deletable by relaxation if
                // the linker places the target right after it (4.2).
                TextPiece tail;
                BranchSite jmp;
                jmp.op = isa::Opcode::JmpNear;
                jmp.targetSymbol = section_of.at(*explicit_fall);
                jmp.targetBb = *explicit_fall;
                jmp.isFallThrough = true;
                tail.site = std::move(jmp);
                sec.pieces.push_back(std::move(tail));
            }
            break;
          }
          default:
            assert(false && "block must end in a terminator");
        }
    }

    if (fn.isHandAsm) {
        TextPiece blob;
        blob.bytes = handAsmDataBlob(fn.name);
        sec.pieces.push_back(std::move(blob));
    }
    return sec;
}

/**
 * Compute the provisional (pre-relaxation, all-near-form) address map for
 * one emitted section.
 */
BbRange
provisionalRange(const Section &sec, const std::string &symbol)
{
    BbRange range;
    range.sectionSymbol = symbol;
    uint32_t offset = 0;
    for (const auto &piece : sec.pieces) {
        if (piece.block) {
            if (!range.blocks.empty()) {
                BbEntry &prev = range.blocks.back();
                prev.size = offset - prev.offset;
            }
            BbEntry entry;
            entry.bbId = piece.block->bbId;
            entry.offset = offset;
            entry.flags = piece.block->flags;
            range.blocks.push_back(entry);
        }
        offset += piece.bytes.size();
        if (piece.site)
            offset += isa::Instruction::sizeOf(piece.site->op);
    }
    if (!range.blocks.empty())
        range.blocks.back().size = offset - range.blocks.back().offset;
    return range;
}

} // namespace

std::string
clusterSymbolName(const std::string &fn, size_t index, bool is_cold)
{
    if (index == 0)
        return fn;
    if (is_cold)
        return fn + ".cold";
    return fn + "." + std::to_string(index);
}

ObjectFile
compileModule(const ir::Module &mod, const Options &opts)
{
    ObjectFile obj;
    obj.name = mod.name + ".o";

    uint64_t lsda_bytes = 0;

    for (const auto &fn : mod.functions) {
        std::vector<SectionPlan> plans = planSections(*fn, opts);

        // Map every block id to its section symbol for branch targets.
        std::unordered_map<uint32_t, std::string> section_of;
        for (const auto &plan : plans) {
            for (const ir::BasicBlock *bb : plan.blocks)
                section_of.emplace(bb->id, plan.symbol);
        }

        FunctionAddrMap map;
        map.functionName = fn->name;

        bool has_landing_pads = false;
        size_t call_sites = 0;
        for (const auto &bb : fn->blocks) {
            if (bb->isLandingPad)
                has_landing_pads = true;
            for (const auto &inst : bb->insts) {
                if (inst.kind == ir::InstKind::Call)
                    ++call_sites;
            }
        }

        for (const auto &plan : plans) {
            Section sec = emitSection(*fn, plan, section_of, opts);
            uint32_t section_index =
                static_cast<uint32_t>(obj.sections.size());

            if (!fn->isHandAsm)
                map.ranges.push_back(provisionalRange(sec, plan.symbol));

            FrameDescriptor fde;
            fde.sectionSymbol = plan.symbol;
            fde.codeLength = static_cast<uint32_t>(sec.size());
            fde.savedRegs = static_cast<uint8_t>(fnv1a(fn->name) % 5 + 1);
            obj.frames.push_back(fde);

            Symbol sym;
            sym.name = plan.symbol;
            sym.sectionIndex = section_index;
            sym.kind =
                plan.isPrimary ? SymbolKind::Function : SymbolKind::Cluster;
            sym.parentFunction = fn->name;
            obj.symbols.push_back(std::move(sym));
            obj.sections.push_back(std::move(sec));
        }

        if (!fn->isHandAsm) {
            // Attach the stale-profile fingerprints (v2 metadata): the
            // hashes are a pure function of the IR, so they are identical
            // across every layout codegen can be asked to produce.
            FunctionFingerprint fp = fingerprintFunction(*fn);
            map.functionHash = fp.functionHash;
            for (auto &range : map.ranges) {
                for (auto &entry : range.blocks) {
                    entry.hash = fp.blockHash.at(entry.bbId);
                    entry.succs = fn->findBlock(entry.bbId)->successors();
                }
            }
            obj.addrMaps.push_back(std::move(map));
        }

        if (has_landing_pads) {
            // Call-site table split across ranges (paper section 4.5):
            // base LSDA + one entry per call site + header per range.
            lsda_bytes += 8 + 4 * call_sites + 8 * plans.size();
        }
        if (fn->hasIntegrityCheck)
            obj.integrityCheckedFunctions.push_back(fn->name);
    }

    // Flatten CFI frame descriptors and LSDA tables into .eh_frame bytes.
    uint64_t eh_bytes = lsda_bytes;
    for (const auto &fde : obj.frames)
        eh_bytes += fde.byteSize();
    if (eh_bytes > 0) {
        Section eh;
        eh.name = ".eh_frame";
        eh.type = SectionType::EhFrame;
        eh.alignment = 8;
        eh.bytes.assign(eh_bytes, 0);
        obj.sections.push_back(std::move(eh));
    }

    if (opts.emitDebugInfo) {
        // Debug info scales with code: descriptors per function, range
        // entries per fragment (DW_AT_ranges + two endpoint relocations,
        // paper 4.3), plus line/type payload proportional to text.
        uint64_t text_bytes = 0;
        for (const auto &sec : obj.sections) {
            if (sec.type == SectionType::Text)
                text_bytes += sec.size();
        }
        uint64_t ranges = obj.frames.size();
        uint64_t debug_bytes =
            text_bytes * 22 / 10 + ranges * 24 + mod.functions.size() * 40;
        Section dbg;
        dbg.name = ".debug_info";
        dbg.type = SectionType::Debug;
        dbg.alignment = 1;
        dbg.bytes.assign(debug_bytes, 0);
        obj.sections.push_back(std::move(dbg));
        obj.debugRelocs = static_cast<uint32_t>(
            ranges * 2 + debug_bytes / 26);
    }

    if (opts.emitAddrMapSection && !obj.addrMaps.empty()) {
        Section bam;
        bam.name = ".bb_addr_map";
        bam.type = SectionType::BbAddrMap;
        bam.alignment = 1;
        bam.bytes = elf::encodeAddrMaps(obj.addrMaps);
        obj.sections.push_back(std::move(bam));
    }

    if (mod.rodataBytes > 0) {
        Section ro;
        ro.name = ".rodata." + mod.name;
        ro.type = SectionType::RoData;
        ro.alignment = 8;
        ro.bytes.assign(mod.rodataBytes, 0);
        obj.sections.push_back(std::move(ro));
    }

    return obj;
}

std::vector<ObjectFile>
compileProgram(const ir::Program &program, const Options &opts)
{
    std::vector<ObjectFile> objects;
    objects.reserve(program.modules.size());
    for (const auto &mod : program.modules)
        objects.push_back(compileModule(*mod, opts));
    return objects;
}

std::vector<std::string>
sanitizeClusterMap(const ir::Program &program, ClusterMap &clusters)
{
    std::vector<std::string> dropped;
    for (auto it = clusters.begin(); it != clusters.end();) {
        const ClusterSpec &spec = it->second;
        const ir::Function *fn = program.findFunction(it->first);
        bool sane = fn != nullptr && !spec.clusters.empty() &&
                    !spec.clusters[0].empty() &&
                    spec.coldIndex < static_cast<int>(spec.clusters.size());
        if (sane)
            sane = spec.clusters[0][0] == fn->entry().id;
        if (sane) {
            std::unordered_set<uint32_t> seen;
            size_t listed = 0;
            for (const auto &cluster : spec.clusters) {
                for (uint32_t id : cluster) {
                    if (!fn->findBlock(id) || !seen.insert(id).second) {
                        sane = false;
                        break;
                    }
                    ++listed;
                }
                if (!sane)
                    break;
            }
            sane = sane && listed == fn->blocks.size();
        }
        if (sane) {
            ++it;
        } else {
            dropped.push_back(it->first);
            it = clusters.erase(it);
        }
    }
    return dropped;
}

} // namespace propeller::codegen
