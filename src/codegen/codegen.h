#ifndef PROPELLER_CODEGEN_CODEGEN_H
#define PROPELLER_CODEGEN_CODEGEN_H

/**
 * @file
 * The compiler backend: lowers IR modules to relocatable object files.
 *
 * Substitute for the LLVM backend of the paper's Phases 2 and 4.  The
 * backend implements:
 *
 *  - function sections (one text section per function);
 *  - **basic block sections** (paper section 4): one text section per basic
 *    block cluster, driven by per-function cluster directives computed by
 *    the whole-program analysis (cc_prof); primary cluster keeps the
 *    function symbol, the cold cluster gets a ".cold" suffix, further
 *    clusters numeric suffixes;
 *  - explicit fall-through jumps between sections with relocations, so the
 *    linker can reorder sections and later relax away redundant jumps
 *    (paper section 4.2);
 *  - BB address map metadata (paper section 3.2);
 *  - per-fragment CFI frame descriptors (paper section 4.4) and the
 *    landing-pad nop rule (paper section 4.5).
 *
 * The backend never chooses final branch encodings: every branch or call is
 * emitted as a *branch site* and the linker's unified relaxation pass picks
 * short/near forms and deletes dead fall-through jumps.  Codegen is a pure
 * function of (module, options), which is what makes its outputs cacheable
 * by content in the distributed build system.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "elf/object.h"
#include "ir/ir.h"

namespace propeller::codegen {

/**
 * Basic block cluster layout for one function (one line-set of
 * cc_prof.txt).  Each inner vector is an ordered cluster of block ids; the
 * first cluster is primary and must start with the entry block.  Every
 * block of the function must appear exactly once.
 */
struct ClusterSpec
{
    std::vector<std::vector<uint32_t>> clusters;

    /**
     * Index of the cold cluster within @ref clusters (gets the ".cold"
     * symbol suffix), or -1 if no cluster is cold.
     */
    int coldIndex = -1;
};

/** Per-function cluster directives, keyed by function name. */
using ClusterMap = std::map<std::string, ClusterSpec>;

/**
 * Drop cluster specs that fail validation against @p program: specs
 * naming unknown functions or blocks, not covering every block exactly
 * once, not leading with the entry block, or carrying an out-of-range
 * cold index.  Codegen treats these as producer-bug invariants and
 * aborts on them; sanitizing first turns a corrupt WPA directive into a
 * per-function fallback (original block order) instead.
 *
 * @return names of dropped functions, in map order.
 */
std::vector<std::string> sanitizeClusterMap(const ir::Program &program,
                                            ClusterMap &clusters);

/** How text sections are formed. */
enum class BbSectionsMode : uint8_t {
    /** One section per function, blocks in original order (baseline). */
    None,
    /** One section per basic block (the section 4.1 worst case). */
    All,
    /** Sections follow per-function ClusterSpec directives (Propeller). */
    Clusters,
};

/** Backend options. */
struct Options
{
    BbSectionsMode bbSections = BbSectionsMode::None;

    /**
     * Cluster directives for BbSectionsMode::Clusters.  Functions without
     * an entry are emitted as a single section in original order.
     */
    const ClusterMap *clusters = nullptr;

    /**
     * Emit the encoded .bb_addr_map section (Phase 2 metadata builds).
     * Structured address maps are always attached to the object for the
     * linker; this flag controls whether the binary pays the size.
     */
    bool emitAddrMapSection = false;

    /** Alignment of function (primary) sections. */
    uint32_t functionAlignment = 16;

    /**
     * Emit DWARF-like debug information (paper section 4.3): a .debug
     * section with DW_AT_ranges descriptors per code fragment, plus the
     * debug relocations that make --emit-relocs metadata binaries of
     * debug builds enormous (section 5.3).
     */
    bool emitDebugInfo = false;

    /**
     * Section 3.5 software-prefetch directives: load-site id ->
     * lookahead.  Loads whose site appears here get a Prefetch emitted
     * immediately before them.  Only modules containing targeted sites
     * produce different objects, preserving cache reuse.
     */
    const std::map<uint16_t, uint8_t> *prefetches = nullptr;
};

/** Compile one module to an object file. */
elf::ObjectFile compileModule(const ir::Module &mod, const Options &opts);

/** Compile every module of a program. */
std::vector<elf::ObjectFile> compileProgram(const ir::Program &program,
                                            const Options &opts);

/** Section symbol name for cluster @p index of function @p fn. */
std::string clusterSymbolName(const std::string &fn, size_t index,
                              bool is_cold);

} // namespace propeller::codegen

#endif // PROPELLER_CODEGEN_CODEGEN_H
