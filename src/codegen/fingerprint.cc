#include "codegen/fingerprint.h"

#include <vector>

#include "support/hash.h"

namespace propeller::codegen {

namespace {

/**
 * Hash of one block's instruction stream.  Branch targets are excluded on
 * purpose: block ids are positional and shift under block insertion or
 * deletion, while the branchId is allocated once and survives edits around
 * the branch.
 */
uint64_t
streamHash(const ir::BasicBlock &bb)
{
    uint64_t h = kFnvOffset;
    h = hashCombine(h, bb.isLandingPad ? 1 : 0);
    for (const auto &inst : bb.insts) {
        h = hashCombine(h, static_cast<uint64_t>(inst.kind));
        switch (inst.kind) {
          case ir::InstKind::Work:
          case ir::InstKind::WorkWide:
          case ir::InstKind::Load:
          case ir::InstKind::Store:
            h = hashCombine(h, inst.reg);
            h = hashCombine(h, inst.imm);
            break;
          case ir::InstKind::Call:
            h = hashCombine(h, fnv1a(inst.callee));
            break;
          case ir::InstKind::CondBr:
            h = hashCombine(h, inst.branchId);
            h = hashCombine(h, inst.bias);
            h = hashCombine(h, inst.periodic ? 1 : 0);
            break;
          case ir::InstKind::Br:
          case ir::InstKind::Ret:
            break;
        }
    }
    return h;
}

} // namespace

FunctionFingerprint
fingerprintFunction(const ir::Function &fn)
{
    FunctionFingerprint fp;

    // Pass 1: per-block opcode-stream hashes and the predecessor relation
    // (in original block order, which is itself layout-invariant: it is
    // the compiler-chosen order stored in the IR, not the linked layout).
    std::unordered_map<uint32_t, uint64_t> stream;
    std::unordered_map<uint32_t, std::vector<uint32_t>> preds;
    stream.reserve(fn.blocks.size());
    for (const auto &bb : fn.blocks)
        stream.emplace(bb->id, streamHash(*bb));
    for (const auto &bb : fn.blocks) {
        for (uint32_t succ : bb->successors())
            preds[succ].push_back(bb->id);
    }

    // Pass 2: fold the 1-hop neighborhood into each block's hash, then
    // combine everything (in original block order) into the function hash.
    fp.blockHash.reserve(fn.blocks.size());
    uint64_t fn_hash = kFnvOffset;
    for (const auto &bb : fn.blocks) {
        uint64_t h = stream.at(bb->id);
        for (uint32_t succ : bb->successors()) {
            auto it = stream.find(succ);
            h = hashCombine(h, it != stream.end() ? it->second : 0);
        }
        auto pit = preds.find(bb->id);
        if (pit != preds.end()) {
            for (uint32_t pred : pit->second)
                h = hashCombine(h, stream.at(pred));
        }
        // Never zero: zero is the "no fingerprint" marker of v1 blobs.
        if (h == 0)
            h = 1;
        fp.blockHash.emplace(bb->id, h);
        fn_hash = hashCombine(fn_hash, h);
    }
    fp.functionHash = hashCombine(fn_hash, fn.blocks.size());
    if (fp.functionHash == 0)
        fp.functionHash = 1;
    return fp;
}

} // namespace propeller::codegen
