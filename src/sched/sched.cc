/**
 * @file
 * Work-stealing execution and deterministic virtual-time simulation.
 */

#include "sched/sched.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <queue>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "support/thread_pool.h"

namespace propeller::sched {

ScheduleReport::Window
ScheduleReport::phaseWindow(const std::string &phase) const
{
    Window w;
    for (const TaskSpan &span : spans) {
        if (span.phase != phase)
            continue;
        if (!w.any) {
            w.startSec = span.startSec;
            w.endSec = span.endSec;
            w.any = true;
        } else {
            w.startSec = std::min(w.startSec, span.startSec);
            w.endSec = std::max(w.endSec, span.endSec);
        }
    }
    return w;
}

TaskId
TaskGraph::add(std::function<void()> fn, TaskOptions opts)
{
    Task task;
    task.fn = std::move(fn);
    task.label = std::move(opts.label);
    task.phase = std::move(opts.phase);
    task.costSec = opts.costSec;
    tasks_.push_back(std::move(task));
    return static_cast<TaskId>(tasks_.size() - 1);
}

void
TaskGraph::addEdge(TaskId before, TaskId after)
{
    tasks_[before].dependents.push_back(after);
    ++tasks_[after].dependencyCount;
}

void
TaskGraph::setCost(TaskId id, double costSec)
{
    tasks_[id].costSec = costSec;
}

void
OrderedSink::submit(uint64_t seq, std::function<void()> commit)
{
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(seq, std::move(commit));
    while (!pending_.empty() && pending_.begin()->first == next_) {
        auto fn = std::move(pending_.begin()->second);
        pending_.erase(pending_.begin());
        // Run under the lock: commits are strictly single file, in
        // sequence order, which is the whole point of the sink.
        fn();
        ++next_;
    }
}

namespace {

/** Kahn topological order; throws if the graph has a cycle. */
std::vector<TaskId>
topologicalOrder(const TaskGraph &graph,
                 const std::vector<TaskGraph::Task> &tasks)
{
    (void)graph;
    std::vector<uint32_t> indeg(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i)
        indeg[i] = tasks[i].dependencyCount;
    std::vector<TaskId> order;
    order.reserve(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i)
        if (indeg[i] == 0)
            order.push_back(static_cast<TaskId>(i));
    for (size_t head = 0; head < order.size(); ++head) {
        for (TaskId dep : tasks[order[head]].dependents)
            if (--indeg[dep] == 0)
                order.push_back(dep);
    }
    if (order.size() != tasks.size())
        throw std::logic_error("TaskGraph contains a dependency cycle");
    return order;
}

/** Shared state for the real (multithreaded) execution. */
struct ExecState
{
    std::vector<TaskGraph::Task> *tasks = nullptr;
    std::vector<std::atomic<uint32_t>> pending;
    std::atomic<size_t> remaining{0};
    std::atomic<bool> failed{false};
    std::mutex errorMu;
    std::exception_ptr error;

    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<TaskId> q;
    };
    std::vector<WorkerQueue> queues;
    std::mutex idleMu;
    std::condition_variable idleCv;
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> stealAttempts{0};

    explicit ExecState(std::vector<TaskGraph::Task> &t, size_t workers)
        : tasks(&t), pending(t.size()), queues(workers)
    {
        for (size_t i = 0; i < t.size(); ++i)
            pending[i].store(t[i].dependencyCount,
                             std::memory_order_relaxed);
        remaining.store(t.size(), std::memory_order_relaxed);
    }

    void
    pushLocal(size_t worker, TaskId id)
    {
        {
            std::lock_guard<std::mutex> lock(queues[worker].mu);
            queues[worker].q.push_back(id);
        }
        idleCv.notify_all();
    }

    bool
    popLocal(size_t worker, TaskId &out)
    {
        std::lock_guard<std::mutex> lock(queues[worker].mu);
        if (queues[worker].q.empty())
            return false;
        out = queues[worker].q.back();
        queues[worker].q.pop_back();
        return true;
    }

    /**
     * Steal half of a victim's deque from the front (the oldest,
     * coarsest tasks), keep one to run and queue the rest locally.
     */
    bool
    trySteal(size_t thief, TaskId &out)
    {
        size_t n = queues.size();
        for (size_t hop = 1; hop < n; ++hop) {
            size_t victim = (thief + hop) % n;
            stealAttempts.fetch_add(1, std::memory_order_relaxed);
            std::vector<TaskId> grabbed;
            {
                std::lock_guard<std::mutex> lock(queues[victim].mu);
                auto &q = queues[victim].q;
                if (q.empty())
                    continue;
                size_t take = (q.size() + 1) / 2;
                grabbed.assign(q.begin(),
                               q.begin() + static_cast<long>(take));
                q.erase(q.begin(), q.begin() + static_cast<long>(take));
            }
            steals.fetch_add(1, std::memory_order_relaxed);
            out = grabbed.front();
            if (grabbed.size() > 1) {
                std::lock_guard<std::mutex> lock(queues[thief].mu);
                for (size_t i = 1; i < grabbed.size(); ++i)
                    queues[thief].q.push_back(grabbed[i]);
            }
            if (grabbed.size() > 1)
                idleCv.notify_all();
            return true;
        }
        return false;
    }

    void
    execute(size_t worker, TaskId id)
    {
        TaskGraph::Task &task = (*tasks)[id];
        if (!failed.load(std::memory_order_acquire)) {
            try {
                if (task.fn)
                    task.fn();
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMu);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_release);
            }
        }
        for (TaskId dep : task.dependents) {
            if (pending[dep].fetch_sub(1, std::memory_order_acq_rel) ==
                1)
                pushLocal(worker, dep);
        }
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            idleCv.notify_all();
    }

    void
    workerLoop(size_t worker)
    {
        while (remaining.load(std::memory_order_acquire) > 0) {
            TaskId id = kInvalidTask;
            if (popLocal(worker, id) || trySteal(worker, id)) {
                execute(worker, id);
                continue;
            }
            std::unique_lock<std::mutex> lock(idleMu);
            idleCv.wait_for(lock, std::chrono::microseconds(200));
        }
        idleCv.notify_all();
    }
};

/** Deterministic critical-path list scheduling on virtual workers. */
void
simulate(const std::vector<TaskGraph::Task> &tasks,
         const std::vector<TaskId> &topo, unsigned workers,
         ScheduleReport &report)
{
    size_t n = tasks.size();
    report.spans.assign(n, TaskSpan{});
    if (n == 0 || workers == 0)
        return;

    // Priority: longest cost-weighted path from the task to any exit,
    // including the task itself. Computed in reverse topological order.
    std::vector<double> toExit(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        TaskId id = topo[i];
        double best = 0.0;
        for (TaskId dep : tasks[id].dependents)
            best = std::max(best, toExit[dep]);
        toExit[id] = tasks[id].costSec + best;
    }
    double criticalPath = 0.0;
    double totalWork = 0.0;
    for (size_t i = 0; i < n; ++i) {
        criticalPath = std::max(criticalPath, toExit[i]);
        totalWork += tasks[i].costSec;
    }

    // Ready set ordered by (priority desc, id asc) — fully
    // deterministic, independent of real thread interleaving.
    struct ReadyLess
    {
        bool
        operator()(const std::pair<double, TaskId> &a,
                   const std::pair<double, TaskId> &b) const
        {
            if (a.first != b.first)
                return a.first > b.first;
            return a.second < b.second;
        }
    };
    std::set<std::pair<double, TaskId>, ReadyLess> ready;

    std::vector<uint32_t> indeg(n);
    for (size_t i = 0; i < n; ++i) {
        indeg[i] = tasks[i].dependencyCount;
        if (indeg[i] == 0)
            ready.insert({toExit[i], static_cast<TaskId>(i)});
    }

    // Idle workers by id; busy workers as (endTime, workerId, taskId)
    // events popped smallest-first with deterministic tie-breaks.
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<uint32_t>>
        idle;
    for (uint32_t w = 0; w < workers; ++w)
        idle.push(w);
    using Event = std::tuple<double, uint32_t, TaskId>;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        busy;

    double now = 0.0;
    double makespan = 0.0;
    size_t scheduled = 0;
    while (scheduled < n) {
        while (!idle.empty() && !ready.empty()) {
            auto [pri, id] = *ready.begin();
            ready.erase(ready.begin());
            uint32_t w = idle.top();
            idle.pop();
            TaskSpan &span = report.spans[id];
            span.id = id;
            span.label = tasks[id].label;
            span.phase = tasks[id].phase;
            span.costSec = tasks[id].costSec;
            span.startSec = now;
            span.endSec = now + tasks[id].costSec;
            span.worker = w;
            makespan = std::max(makespan, span.endSec);
            busy.push({span.endSec, w, id});
            ++scheduled;
        }
        if (busy.empty())
            break;
        auto [end, w, id] = busy.top();
        busy.pop();
        now = end;
        idle.push(w);
        for (TaskId dep : tasks[id].dependents)
            if (--indeg[dep] == 0)
                ready.insert({toExit[dep], dep});
    }

    report.makespanSec = makespan;
    report.criticalPathSec = criticalPath;
    report.totalWorkSec = totalWork;
    report.lowerBoundSec =
        std::max(criticalPath, totalWork / workers);
    report.parallelEfficiency =
        makespan > 0.0 ? totalWork / (workers * makespan) : 1.0;
    report.modelWorkers = workers;
    report.tasksExecuted = static_cast<uint32_t>(n);
}

} // namespace

ScheduleReport
Scheduler::run(TaskGraph &graph)
{
    auto &tasks = graph.tasks_;
    std::vector<TaskId> topo = topologicalOrder(graph, tasks);

    unsigned threads = resolveThreadCount(opts_.threads);
    if (!tasks.empty())
        threads = std::min<unsigned>(
            threads, static_cast<unsigned>(tasks.size()));
    threads = std::max(threads, 1u);

    ScheduleReport report;
    report.realThreads = threads;

    if (threads == 1) {
        // Inline release-order execution: FIFO over topological
        // release, trivially deterministic.
        std::exception_ptr error;
        bool failed = false;
        std::vector<uint32_t> indeg(tasks.size());
        std::deque<TaskId> queue;
        for (size_t i = 0; i < tasks.size(); ++i) {
            indeg[i] = tasks[i].dependencyCount;
            if (indeg[i] == 0)
                queue.push_back(static_cast<TaskId>(i));
        }
        while (!queue.empty()) {
            TaskId id = queue.front();
            queue.pop_front();
            if (!failed) {
                try {
                    if (tasks[id].fn)
                        tasks[id].fn();
                } catch (...) {
                    error = std::current_exception();
                    failed = true;
                }
            }
            for (TaskId dep : tasks[id].dependents)
                if (--indeg[dep] == 0)
                    queue.push_back(dep);
        }
        if (error)
            std::rethrow_exception(error);
    } else {
        ExecState state(tasks, threads);
        // Seed the roots round-robin across worker deques, in id
        // order, so every worker starts with local work.
        {
            size_t next = 0;
            for (size_t i = 0; i < tasks.size(); ++i) {
                if (tasks[i].dependencyCount == 0) {
                    std::lock_guard<std::mutex> lock(
                        state.queues[next].mu);
                    state.queues[next].q.push_back(
                        static_cast<TaskId>(i));
                    next = (next + 1) % threads;
                }
            }
        }
        std::vector<std::thread> pool;
        pool.reserve(threads - 1);
        for (unsigned w = 1; w < threads; ++w)
            pool.emplace_back(
                [&state, w] { state.workerLoop(w); });
        state.workerLoop(0);
        for (auto &t : pool)
            t.join();
        report.steals = state.steals.load();
        report.stealAttempts = state.stealAttempts.load();
        if (state.error)
            std::rethrow_exception(state.error);
    }

    // Costs may have been refined from inside task bodies; the joins
    // above order those writes before this read.
    simulate(tasks, topo, std::max(opts_.modelWorkers, 1u), report);
    return report;
}

} // namespace propeller::sched
