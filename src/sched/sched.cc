/**
 * @file
 * Work-stealing execution (critical-path priority deques, run-time
 * graph growth) and deterministic virtual-time simulation.
 */

#include "sched/sched.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <queue>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "support/thread_pool.h"

namespace propeller::sched {

namespace {

/** Worker index of the current thread while a run is active. */
thread_local size_t tlWorker = 0;

} // namespace

namespace detail {

/** Shared state for the real (multithreaded) execution. */
struct ExecState
{
    using Entry = std::pair<double, TaskId>; // (rank, id)

    TaskGraph *graph = nullptr;
    bool fifo = false;
    std::atomic<size_t> remaining{0};
    std::atomic<bool> failed{false};
    std::mutex errorMu;
    std::exception_ptr error;

    struct WorkerQueue
    {
        std::mutex mu;
        /** Priority mode: ascending rank (owner pops the back = the
         *  highest rank, thieves take the low-rank front). FIFO mode:
         *  plain release order (owner LIFO from the back). */
        std::deque<Entry> q;
    };
    std::vector<WorkerQueue> queues;
    std::mutex idleMu;
    std::condition_variable idleCv;
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> stealAttempts{0};
    std::vector<double> idleSec;

    ExecState(TaskGraph &g, size_t workers, bool fifoQueues)
        : graph(&g), fifo(fifoQueues), queues(workers),
          idleSec(workers, 0.0)
    {
    }

    void
    insertSorted(std::deque<Entry> &q, Entry e)
    {
        if (fifo) {
            q.push_back(e);
            return;
        }
        auto pos = std::upper_bound(
            q.begin(), q.end(), e.first,
            [](double rank, const Entry &other) {
                return rank < other.first;
            });
        q.insert(pos, e);
    }

    void
    pushLocal(size_t worker, Entry e)
    {
        {
            std::lock_guard<std::mutex> lock(queues[worker].mu);
            insertSorted(queues[worker].q, e);
        }
        idleCv.notify_all();
    }

    bool
    popLocal(size_t worker, Entry &out)
    {
        std::lock_guard<std::mutex> lock(queues[worker].mu);
        if (queues[worker].q.empty())
            return false;
        out = queues[worker].q.back();
        queues[worker].q.pop_back();
        return true;
    }

    /**
     * Steal half of a victim's deque from the front — the oldest tasks
     * in FIFO mode, the lowest-rank tasks in priority mode (the owner
     * keeps the critical path) — keep one to run and queue the rest
     * locally.
     */
    bool
    trySteal(size_t thief, Entry &out)
    {
        size_t n = queues.size();
        for (size_t hop = 1; hop < n; ++hop) {
            size_t victim = (thief + hop) % n;
            stealAttempts.fetch_add(1, std::memory_order_relaxed);
            std::vector<Entry> grabbed;
            {
                std::lock_guard<std::mutex> lock(queues[victim].mu);
                auto &q = queues[victim].q;
                if (q.empty())
                    continue;
                size_t take = (q.size() + 1) / 2;
                grabbed.assign(q.begin(),
                               q.begin() + static_cast<long>(take));
                q.erase(q.begin(), q.begin() + static_cast<long>(take));
            }
            steals.fetch_add(1, std::memory_order_relaxed);
            out = grabbed.front();
            if (grabbed.size() > 1) {
                std::lock_guard<std::mutex> lock(queues[thief].mu);
                for (size_t i = 1; i < grabbed.size(); ++i)
                    insertSorted(queues[thief].q, grabbed[i]);
            }
            if (grabbed.size() > 1)
                idleCv.notify_all();
            return true;
        }
        return false;
    }

    /** Release a task created at run time whose dependencies are all
     *  satisfied; runs under the graph lock (called from add). */
    void
    enqueueFromAdd(double rank, TaskId id)
    {
        size_t worker = tlWorker < queues.size() ? tlWorker : 0;
        pushLocal(worker, {rank, id});
    }

    void
    execute(size_t worker, TaskId id)
    {
        TaskGraph::Task *task;
        {
            // Deque element references are stable, but operator[]
            // itself races with run-time emplace_back — take the
            // pointer under the graph lock.
            std::lock_guard<std::mutex> lock(graph->mu_);
            task = &graph->tasks_[id];
        }
        if (!failed.load(std::memory_order_acquire)) {
            try {
                if (task->fn)
                    task->fn();
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMu);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_release);
            }
        }
        std::vector<Entry> ready;
        {
            // done + dependent release are one critical section, so an
            // addEdge that observes done == false is guaranteed its
            // increment is seen by this release loop.
            std::lock_guard<std::mutex> lock(graph->mu_);
            task->done = true;
            for (TaskId dep : task->dependents) {
                TaskGraph::Task &d = graph->tasks_[dep];
                if (d.pendingRuntime > 0 && --d.pendingRuntime == 0)
                    ready.push_back({d.rank, dep});
            }
        }
        for (const Entry &e : ready)
            pushLocal(worker, e);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            idleCv.notify_all();
    }

    void
    workerLoop(size_t worker)
    {
        tlWorker = worker;
        while (remaining.load(std::memory_order_acquire) > 0) {
            Entry e{0.0, kInvalidTask};
            if (popLocal(worker, e) || trySteal(worker, e)) {
                execute(worker, e.second);
                continue;
            }
            auto t0 = std::chrono::steady_clock::now();
            {
                std::unique_lock<std::mutex> lock(idleMu);
                idleCv.wait_for(lock, std::chrono::microseconds(200));
            }
            idleSec[worker] +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        }
        idleCv.notify_all();
    }
};

} // namespace detail

ScheduleReport::Window
ScheduleReport::phaseWindow(const std::string &phase) const
{
    Window w;
    for (const TaskSpan &span : spans) {
        if (span.phase != phase)
            continue;
        if (!w.any) {
            w.startSec = span.startSec;
            w.endSec = span.endSec;
            w.any = true;
        } else {
            w.startSec = std::min(w.startSec, span.startSec);
            w.endSec = std::max(w.endSec, span.endSec);
        }
    }
    return w;
}

TaskId
TaskGraph::add(std::function<void()> fn, TaskOptions opts)
{
    return add(std::move(fn), std::move(opts), {});
}

TaskId
TaskGraph::add(std::function<void()> fn, TaskOptions opts,
               const std::vector<TaskId> &deps)
{
    std::lock_guard<std::mutex> lock(mu_);
    TaskId id = static_cast<TaskId>(tasks_.size());
    tasks_.emplace_back();
    Task &task = tasks_.back();
    task.fn = std::move(fn);
    task.label = std::move(opts.label);
    task.phase = std::move(opts.phase);
    task.costSec = opts.costSec;
    task.rank = opts.costSec;
    for (TaskId dep : deps) {
        tasks_[dep].dependents.push_back(id);
        ++task.dependencyCount;
        if (!tasks_[dep].done)
            ++task.pendingRuntime;
    }
    if (exec_) {
        exec_->remaining.fetch_add(1, std::memory_order_acq_rel);
        if (task.pendingRuntime == 0)
            exec_->enqueueFromAdd(task.rank, id);
    }
    return id;
}

void
TaskGraph::addEdge(TaskId before, TaskId after)
{
    std::lock_guard<std::mutex> lock(mu_);
    Task &b = tasks_[before];
    Task &a = tasks_[after];
    b.dependents.push_back(after);
    ++a.dependencyCount;
    if (!b.done) {
        if (exec_ && a.pendingRuntime == 0)
            throw std::logic_error(
                "TaskGraph::addEdge at run time targets a task that "
                "was already released");
        ++a.pendingRuntime;
    }
    // One-level rank refinement: edges added at run time lift their
    // upstream task's steal priority by the downstream chain.
    b.rank = std::max(b.rank, b.costSec + a.rank);
}

void
TaskGraph::setCost(TaskId id, double costSec)
{
    std::lock_guard<std::mutex> lock(mu_);
    tasks_[id].costSec = costSec;
}

void
OrderedSink::submit(uint64_t seq, std::function<void()> commit)
{
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(seq, std::move(commit));
    while (!pending_.empty() && pending_.begin()->first == next_) {
        auto fn = std::move(pending_.begin()->second);
        pending_.erase(pending_.begin());
        // Run under the lock: commits are strictly single file, in
        // sequence order, which is the whole point of the sink.
        fn();
        ++next_;
    }
}

namespace {

/** Kahn topological order; throws if the graph has a cycle. */
std::vector<TaskId>
topologicalOrder(const std::deque<TaskGraph::Task> &tasks)
{
    std::vector<uint32_t> indeg(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i)
        indeg[i] = tasks[i].dependencyCount;
    std::vector<TaskId> order;
    order.reserve(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i)
        if (indeg[i] == 0)
            order.push_back(static_cast<TaskId>(i));
    for (size_t head = 0; head < order.size(); ++head) {
        for (TaskId dep : tasks[order[head]].dependents)
            if (--indeg[dep] == 0)
                order.push_back(dep);
    }
    if (order.size() != tasks.size())
        throw std::logic_error("TaskGraph contains a dependency cycle");
    return order;
}

/** Deterministic critical-path list scheduling on virtual workers. */
void
simulate(const std::deque<TaskGraph::Task> &tasks,
         const std::vector<TaskId> &topo, unsigned workers,
         ScheduleReport &report)
{
    size_t n = tasks.size();
    report.spans.assign(n, TaskSpan{});
    if (n == 0 || workers == 0)
        return;

    // Priority: longest cost-weighted path from the task to any exit,
    // including the task itself. Computed in reverse topological order.
    std::vector<double> toExit(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        TaskId id = topo[i];
        double best = 0.0;
        for (TaskId dep : tasks[id].dependents)
            best = std::max(best, toExit[dep]);
        toExit[id] = tasks[id].costSec + best;
    }
    double criticalPath = 0.0;
    double totalWork = 0.0;
    for (size_t i = 0; i < n; ++i) {
        criticalPath = std::max(criticalPath, toExit[i]);
        totalWork += tasks[i].costSec;
    }

    // Ready set ordered by (priority desc, id asc) — fully
    // deterministic, independent of real thread interleaving.
    struct ReadyLess
    {
        bool
        operator()(const std::pair<double, TaskId> &a,
                   const std::pair<double, TaskId> &b) const
        {
            if (a.first != b.first)
                return a.first > b.first;
            return a.second < b.second;
        }
    };
    std::set<std::pair<double, TaskId>, ReadyLess> ready;

    std::vector<uint32_t> indeg(n);
    for (size_t i = 0; i < n; ++i) {
        indeg[i] = tasks[i].dependencyCount;
        if (indeg[i] == 0)
            ready.insert({toExit[i], static_cast<TaskId>(i)});
    }

    // Idle workers by id; busy workers as (endTime, workerId, taskId)
    // events popped smallest-first with deterministic tie-breaks.
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<uint32_t>>
        idle;
    for (uint32_t w = 0; w < workers; ++w)
        idle.push(w);
    using Event = std::tuple<double, uint32_t, TaskId>;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        busy;

    double now = 0.0;
    double makespan = 0.0;
    size_t scheduled = 0;
    while (scheduled < n) {
        while (!idle.empty() && !ready.empty()) {
            auto [pri, id] = *ready.begin();
            ready.erase(ready.begin());
            uint32_t w = idle.top();
            idle.pop();
            TaskSpan &span = report.spans[id];
            span.id = id;
            span.label = tasks[id].label;
            span.phase = tasks[id].phase;
            span.costSec = tasks[id].costSec;
            span.startSec = now;
            span.endSec = now + tasks[id].costSec;
            span.worker = w;
            makespan = std::max(makespan, span.endSec);
            busy.push({span.endSec, w, id});
            ++scheduled;
        }
        if (busy.empty())
            break;
        auto [end, w, id] = busy.top();
        busy.pop();
        now = end;
        idle.push(w);
        for (TaskId dep : tasks[id].dependents)
            if (--indeg[dep] == 0)
                ready.insert({toExit[dep], dep});
    }

    // Refined bound: every transitive ancestor of a task must finish
    // before it starts (on at most `workers` workers), and the longest
    // chain below it runs strictly after, so for any task t
    //     makespan >= ancestorWork(t) / workers + toExit(t).
    // Unlike max(CP, work/W) this sees structurally serial epilogues —
    // e.g. a final link task that depends on every compile — whose idle
    // cost no schedule can avoid.  Ancestor sets are exact (bitset
    // transitive closure); skipped for very large graphs where the
    // closure would dominate, falling back to the classical bound.
    double refined = 0.0;
    if (n <= 8192) {
        const size_t words = (n + 63) / 64;
        std::vector<uint64_t> anc(n * words, 0);
        for (TaskId id : topo) {
            const uint64_t *self = &anc[static_cast<size_t>(id) * words];
            for (TaskId dep : tasks[id].dependents) {
                uint64_t *dst = &anc[static_cast<size_t>(dep) * words];
                for (size_t w = 0; w < words; ++w)
                    dst[w] |= self[w];
                dst[id / 64] |= uint64_t(1) << (id % 64);
            }
        }
        for (size_t i = 0; i < n; ++i) {
            double ancWork = 0.0;
            const uint64_t *row = &anc[i * words];
            for (size_t w = 0; w < words; ++w) {
                uint64_t bits = row[w];
                while (bits != 0) {
                    size_t b = static_cast<size_t>(std::countr_zero(bits));
                    bits &= bits - 1;
                    ancWork += tasks[w * 64 + b].costSec;
                }
            }
            refined = std::max(refined, ancWork / workers + toExit[i]);
        }
    }

    report.makespanSec = makespan;
    report.criticalPathSec = criticalPath;
    report.totalWorkSec = totalWork;
    report.lowerBoundSec =
        std::max({criticalPath, totalWork / workers, refined});
    report.parallelEfficiency =
        makespan > 0.0 ? totalWork / (workers * makespan) : 1.0;
    report.modelWorkers = workers;
    report.tasksExecuted = static_cast<uint32_t>(n);
}

} // namespace

ScheduleReport
Scheduler::run(TaskGraph &graph)
{
    auto &tasks = graph.tasks_;
    // Cycle check over the static graph (run-time additions are
    // acyclic by the unreleased-target contract) and exact upward
    // ranks for the steal priority.
    std::vector<TaskId> topo = topologicalOrder(tasks);
    for (size_t i = topo.size(); i-- > 0;) {
        TaskId id = topo[i];
        double best = 0.0;
        for (TaskId dep : tasks[id].dependents)
            best = std::max(best, tasks[dep].rank);
        tasks[id].rank = tasks[id].costSec + best;
    }

    unsigned threads = resolveThreadCount(opts_.threads);
    if (!tasks.empty())
        threads = std::min<unsigned>(
            threads, static_cast<unsigned>(tasks.size()));
    threads = std::max(threads, 1u);

    ScheduleReport report;
    report.realThreads = threads;

    detail::ExecState state(graph, threads, opts_.fifoQueues);
    state.remaining.store(tasks.size(), std::memory_order_relaxed);
    graph.exec_ = &state;
    // Seed the roots round-robin across worker deques, in id order,
    // so every worker starts with local work.
    {
        size_t next = 0;
        for (size_t i = 0; i < tasks.size(); ++i) {
            if (tasks[i].pendingRuntime == 0) {
                std::lock_guard<std::mutex> lock(
                    state.queues[next].mu);
                state.insertSorted(
                    state.queues[next].q,
                    {tasks[i].rank, static_cast<TaskId>(i)});
                next = (next + 1) % threads;
            }
        }
    }
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w)
        pool.emplace_back([&state, w] { state.workerLoop(w); });
    state.workerLoop(0);
    for (auto &t : pool)
        t.join();
    graph.exec_ = nullptr;
    report.steals = state.steals.load();
    report.stealAttempts = state.stealAttempts.load();
    report.workerIdleSec = state.idleSec;
    if (state.error)
        std::rethrow_exception(state.error);

    // Costs may have been refined and tasks added from inside task
    // bodies; the joins above order those writes before this read.
    std::vector<TaskId> finalTopo = topologicalOrder(tasks);
    simulate(tasks, finalTopo, std::max(opts_.modelWorkers, 1u),
             report);
    return report;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            out += "?";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

} // namespace

bool
writeChromeTrace(const ScheduleReport &report, const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\"displayTimeUnit\": \"ms\",\n");
    std::fprintf(f, " \"traceEvents\": [\n");
    bool first = true;
    for (uint32_t w = 0; w < report.modelWorkers; ++w) {
        std::fprintf(f,
                     "%s  {\"name\": \"thread_name\", \"ph\": \"M\", "
                     "\"pid\": 0, \"tid\": %u, \"args\": {\"name\": "
                     "\"worker %u\"}}",
                     first ? "" : ",\n", w, w);
        first = false;
    }
    for (const TaskSpan &span : report.spans) {
        if (span.id == kInvalidTask)
            continue;
        std::fprintf(
            f,
            "%s  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"pid\": 0, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
            first ? "" : ",\n", jsonEscape(span.label).c_str(),
            jsonEscape(span.phase).c_str(), span.worker,
            span.startSec * 1e6, span.costSec * 1e6);
        first = false;
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
}

std::string
summarizeSchedule(const ScheduleReport &report)
{
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof buf,
                  "makespan %.3fs (%.3fx lower bound %.3fs)\n",
                  report.makespanSec,
                  report.lowerBoundSec > 0.0
                      ? report.makespanSec / report.lowerBoundSec
                      : 0.0,
                  report.lowerBoundSec);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "critical path %.3fs, total work %.3fs, "
                  "efficiency %.3f on %u model workers\n",
                  report.criticalPathSec, report.totalWorkSec,
                  report.parallelEfficiency, report.modelWorkers);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "tasks %llu; real: %u threads, steals %llu/%llu "
                  "(hit rate %.3f)\n",
                  static_cast<unsigned long long>(report.tasksExecuted),
                  report.realThreads,
                  static_cast<unsigned long long>(report.steals),
                  static_cast<unsigned long long>(report.stealAttempts),
                  report.stealHitRate());
    out += buf;
    return out;
}

} // namespace propeller::sched
