#ifndef PROPELLER_SCHED_SCHED_H
#define PROPELLER_SCHED_SCHED_H

/**
 * @file
 * Work-stealing task-graph scheduler for the relink pipeline.
 *
 * The engine separates two concerns that the phase-barriered Workflow
 * conflated:
 *
 *  - **Real execution.** Tasks run on a pool of workers with per-worker
 *    deques ordered by critical-path priority (upward rank): owners pop
 *    the highest-rank task first, thieves steal the low-rank half from
 *    the front, so the longest dependency chains drain first and the
 *    makespan tracks the critical-path bound. A task becomes runnable
 *    the moment its last dependency completes — topological release, no
 *    phase barriers. `SchedulerOptions::fifoQueues` keeps the original
 *    FIFO/LIFO deque discipline as an ablation. Wall-clock speedup
 *    comes from here.
 *
 *  - **Modelled time.** Steal order is nondeterministic, so modelled
 *    spans and makespan are produced by a deterministic virtual-time
 *    list-scheduling simulation over the same graph after execution:
 *    priority = longest path to exit (critical-path scheduling),
 *    tie-break by task id, on `SchedulerOptions::modelWorkers` virtual
 *    workers. The simulation depends only on the graph shape and task
 *    costs, never on thread interleaving, so every schedule metric in
 *    `ScheduleReport` is reproducible at any thread count.
 *
 * Tasks may grow the graph while it runs: `add(fn, opts, deps)` and
 * `addEdge` are callable from inside a task body, which is how the
 * workflow turns "how many functions are hot" — only known once the
 * profile is ingested — into per-function layout tasks on the same
 * schedule. Two contracts keep this sound: (a) an edge added at run
 * time must target a task that is still unreleased (held by a static
 * edge from the adding task), and (b) for the modelled schedule to stay
 * deterministic, dynamic tasks must be created in a deterministic order
 * (in practice: by a single adder task).
 *
 * Determinism of *results* is the caller's contract: tasks write into
 * preallocated slots or commit through an `OrderedSink`, which runs
 * commit closures in strict sequence order regardless of completion
 * order.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace propeller::sched {

using TaskId = uint32_t;

constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

/** Static description attached to a task at creation time. */
struct TaskOptions
{
    /** Display label, e.g. "codegen:mod07". */
    std::string label;
    /** Phase bucket for report grouping, e.g. "phase4.codegen". */
    std::string phase;
    /**
     * Modelled cost in seconds. Tasks whose cost is only known after
     * running (cache hit vs miss, retries) may refine it from inside
     * the task body via TaskGraph::setCost.
     */
    double costSec = 0.0;
};

/** One task's placement in the modelled (virtual-time) schedule. */
struct TaskSpan
{
    TaskId id = kInvalidTask;
    std::string label;
    std::string phase;
    double costSec = 0.0;
    double startSec = 0.0;
    double endSec = 0.0;
    /** Virtual worker the simulation placed the task on. */
    uint32_t worker = 0;
};

/** Deterministic schedule metrics plus real-execution counters. */
struct ScheduleReport
{
    /** Modelled end-to-end time on `modelWorkers` virtual workers. */
    double makespanSec = 0.0;
    /** Longest cost-weighted dependency chain through the graph. */
    double criticalPathSec = 0.0;
    /** Sum of all task costs. */
    double totalWorkSec = 0.0;
    /**
     * Best provable bound on any schedule's makespan: the classical
     * max(criticalPathSec, totalWorkSec / modelWorkers), strengthened
     * by the ancestor-work bound — for every task, its transitive
     * ancestors' total work divided by the worker count plus the
     * longest chain from the task to an exit.  The last term charges
     * for structurally serial epilogues (a final link depending on
     * every compile) that the classical bound treats as free.
     */
    double lowerBoundSec = 0.0;
    /** totalWorkSec / (modelWorkers * makespanSec); 1.0 = no idle. */
    double parallelEfficiency = 0.0;
    uint32_t modelWorkers = 0;
    uint32_t tasksExecuted = 0;

    /** Real execution-side counters (informational; nondeterministic). */
    unsigned realThreads = 0;
    uint64_t steals = 0;
    uint64_t stealAttempts = 0;
    /** Wall-clock seconds each real worker spent waiting for work. */
    std::vector<double> workerIdleSec;

    /** Per-task modelled spans, in task-id order. */
    std::vector<TaskSpan> spans;

    /** makespan / lower bound; 1.0 is a perfect schedule. */
    double
    criticalPathRatio() const
    {
        return lowerBoundSec > 0.0 ? makespanSec / lowerBoundSec : 1.0;
    }

    /** steals / stealAttempts; 1.0 when every probe found work. */
    double
    stealHitRate() const
    {
        return stealAttempts > 0
                   ? static_cast<double>(steals) /
                         static_cast<double>(stealAttempts)
                   : 1.0;
    }

    /** [min start, max end] over the spans of one phase bucket. */
    struct Window
    {
        double startSec = 0.0;
        double endSec = 0.0;
        bool any = false;
        double
        lengthSec() const
        {
            return any ? endSec - startSec : 0.0;
        }
    };
    Window phaseWindow(const std::string &phase) const;
};

namespace detail {
struct ExecState;
}

/**
 * A dependency graph of runnable tasks. Build the static graph up front
 * (add tasks, then edges), hand it to Scheduler::run; task bodies may
 * extend the graph while it runs via the dependency-taking `add`
 * overload and `addEdge`. Not reusable: a graph runs once.
 */
class TaskGraph
{
  public:
    /** Add a task; returns its id (ids are dense, in creation order). */
    TaskId add(std::function<void()> fn, TaskOptions opts = {});

    /**
     * Add a task depending on `deps`. Callable from inside a running
     * task body: dependencies that already finished count as satisfied,
     * and if all have, the task is enqueued on the calling worker
     * immediately. Listing the currently running task as a dependency
     * is the idiomatic way to release the new task only after its adder
     * finishes (and after any addEdge calls that gate it further).
     */
    TaskId add(std::function<void()> fn, TaskOptions opts,
               const std::vector<TaskId> &deps);

    /**
     * `after` cannot start until `before` has finished. Callable while
     * the graph runs, provided `after` is still unreleased — in
     * practice `after` must hold a pending edge from the task doing the
     * adding. If `before` already finished, the edge is recorded for
     * the model but is immediately satisfied.
     */
    void addEdge(TaskId before, TaskId after);

    /**
     * Refine a task's modelled cost. Safe from inside the task's own
     * body while the graph is running (single writer per task; readers
     * only look after the run joins).
     */
    void setCost(TaskId id, double costSec);

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return tasks_.size();
    }
    double cost(TaskId id) const { return tasks_[id].costSec; }
    const std::string &phase(TaskId id) const { return tasks_[id].phase; }

    /** Internal task record; public so scheduler helpers can see it. */
    struct Task
    {
        std::function<void()> fn;
        std::string label;
        std::string phase;
        double costSec = 0.0;
        std::vector<TaskId> dependents;
        /** Total dependency count, for the model's indegree. */
        uint32_t dependencyCount = 0;
        /** Unfinished dependencies left; 0 = released to a queue. */
        uint32_t pendingRuntime = 0;
        /** Upward rank (cost + longest dependent chain), the steal
         *  priority. Exact for the static graph, refined one level per
         *  addEdge for tasks added at run time. */
        double rank = 0.0;
        bool done = false;
    };

  private:
    friend class Scheduler;
    friend struct detail::ExecState;
    /** Deque so Task references stay valid across run-time adds. */
    std::deque<Task> tasks_;
    mutable std::mutex mu_;
    /** Live execution state while Scheduler::run is active. */
    detail::ExecState *exec_ = nullptr;
};

struct SchedulerOptions
{
    /** Real execution threads; 0 = hardware concurrency, 1 = inline. */
    unsigned threads = 0;
    /** Virtual workers for the deterministic schedule model. */
    unsigned modelWorkers = 8;
    /**
     * Ablation: plain FIFO-release deques (owner LIFO, steal oldest)
     * instead of critical-path-priority ordering.
     */
    bool fifoQueues = false;
};

/**
 * Executes a TaskGraph with work stealing, then replays it through the
 * deterministic virtual-time simulation to produce the ScheduleReport.
 * The first exception thrown by a task is rethrown from run() after
 * the graph drains (downstream task bodies are skipped, not run
 * against missing inputs).
 */
class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions opts = {}) : opts_(opts) {}

    ScheduleReport run(TaskGraph &graph);

  private:
    SchedulerOptions opts_;
};

/**
 * Commits results in strict sequence order: `submit(seq, fn)` may be
 * called from any thread in any order, but the closures run exactly in
 * increasing `seq` order (0,1,2,...), each under the sink's lock.
 * This is the determinism keystone: side effects that are order
 * sensitive (cache population, failure attribution, report lines) go
 * through the sink, so shipped bytes and reports are identical at any
 * thread count.
 */
class OrderedSink
{
  public:
    explicit OrderedSink(uint64_t firstSeq = 0) : next_(firstSeq) {}

    void submit(uint64_t seq, std::function<void()> commit);

    /** Sequence number the sink is waiting for next. */
    uint64_t
    committed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return next_;
    }

  private:
    mutable std::mutex mu_;
    std::map<uint64_t, std::function<void()>> pending_;
    uint64_t next_ = 0;
};

/**
 * Write the modelled spans as Chrome trace_event JSON ("X" complete
 * events, ts/dur in microseconds, tid = virtual worker) loadable in
 * chrome://tracing or Perfetto. Returns false if the file cannot be
 * written.
 */
bool writeChromeTrace(const ScheduleReport &report,
                      const std::string &path);

/**
 * Compact multi-line text rendering of a ScheduleReport (the statusz
 * "last relink" block): makespan vs the lower bound, critical path,
 * parallel efficiency, task count and steal counters.  Only modelled
 * (deterministic) quantities — the real steal counters are labelled as
 * such so fleet statusz diffs stay meaningful across runs.
 */
std::string summarizeSchedule(const ScheduleReport &report);

} // namespace propeller::sched

#endif // PROPELLER_SCHED_SCHED_H
