#ifndef PROPELLER_SCHED_SCHED_H
#define PROPELLER_SCHED_SCHED_H

/**
 * @file
 * Work-stealing task-graph scheduler for the relink pipeline.
 *
 * The engine separates two concerns that the phase-barriered Workflow
 * conflated:
 *
 *  - **Real execution.** Tasks run on a pool of workers with per-worker
 *    deques (owner pops LIFO from the back, thieves steal half from the
 *    front). A task becomes runnable the moment its last dependency
 *    completes — topological release, no phase barriers. Wall-clock
 *    speedup comes from here.
 *
 *  - **Modelled time.** Steal order is nondeterministic, so modelled
 *    spans and makespan are produced by a deterministic virtual-time
 *    list-scheduling simulation over the same graph after execution:
 *    priority = longest path to exit (critical-path scheduling),
 *    tie-break by task id, on `SchedulerOptions::modelWorkers` virtual
 *    workers. The simulation depends only on the graph shape and task
 *    costs, never on thread interleaving, so every schedule metric in
 *    `ScheduleReport` is reproducible at any thread count.
 *
 * Determinism of *results* is the caller's contract: tasks write into
 * preallocated slots or commit through an `OrderedSink`, which runs
 * commit closures in strict sequence order regardless of completion
 * order.
 */

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace propeller::sched {

using TaskId = uint32_t;

constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

/** Static description attached to a task at creation time. */
struct TaskOptions
{
    /** Display label, e.g. "codegen:mod07". */
    std::string label;
    /** Phase bucket for report grouping, e.g. "phase4.codegen". */
    std::string phase;
    /**
     * Modelled cost in seconds. Tasks whose cost is only known after
     * running (cache hit vs miss, retries) may refine it from inside
     * the task body via TaskGraph::setCost.
     */
    double costSec = 0.0;
};

/** One task's placement in the modelled (virtual-time) schedule. */
struct TaskSpan
{
    TaskId id = kInvalidTask;
    std::string label;
    std::string phase;
    double costSec = 0.0;
    double startSec = 0.0;
    double endSec = 0.0;
    /** Virtual worker the simulation placed the task on. */
    uint32_t worker = 0;
};

/** Deterministic schedule metrics plus real-execution counters. */
struct ScheduleReport
{
    /** Modelled end-to-end time on `modelWorkers` virtual workers. */
    double makespanSec = 0.0;
    /** Longest cost-weighted dependency chain through the graph. */
    double criticalPathSec = 0.0;
    /** Sum of all task costs. */
    double totalWorkSec = 0.0;
    /** max(criticalPathSec, totalWorkSec / modelWorkers). */
    double lowerBoundSec = 0.0;
    /** totalWorkSec / (modelWorkers * makespanSec); 1.0 = no idle. */
    double parallelEfficiency = 0.0;
    uint32_t modelWorkers = 0;
    uint32_t tasksExecuted = 0;

    /** Real execution-side counters (informational; nondeterministic). */
    unsigned realThreads = 0;
    uint64_t steals = 0;
    uint64_t stealAttempts = 0;

    /** Per-task modelled spans, in task-id order. */
    std::vector<TaskSpan> spans;

    /** makespan / lower bound; 1.0 is a perfect schedule. */
    double
    criticalPathRatio() const
    {
        return lowerBoundSec > 0.0 ? makespanSec / lowerBoundSec : 1.0;
    }

    /** [min start, max end] over the spans of one phase bucket. */
    struct Window
    {
        double startSec = 0.0;
        double endSec = 0.0;
        bool any = false;
        double
        lengthSec() const
        {
            return any ? endSec - startSec : 0.0;
        }
    };
    Window phaseWindow(const std::string &phase) const;
};

/**
 * A dependency graph of runnable tasks. Build the full graph up front
 * (add tasks, then edges), hand it to Scheduler::run. Not reusable:
 * a graph runs once.
 */
class TaskGraph
{
  public:
    /** Add a task; returns its id (ids are dense, in creation order). */
    TaskId add(std::function<void()> fn, TaskOptions opts = {});

    /** `after` cannot start until `before` has finished. */
    void addEdge(TaskId before, TaskId after);

    /**
     * Refine a task's modelled cost. Safe from inside the task's own
     * body while the graph is running (single writer per task; readers
     * only look after the run joins).
     */
    void setCost(TaskId id, double costSec);

    size_t size() const { return tasks_.size(); }
    double cost(TaskId id) const { return tasks_[id].costSec; }
    const std::string &phase(TaskId id) const { return tasks_[id].phase; }

    /** Internal task record; public so scheduler helpers can see it. */
    struct Task
    {
        std::function<void()> fn;
        std::string label;
        std::string phase;
        double costSec = 0.0;
        std::vector<TaskId> dependents;
        uint32_t dependencyCount = 0;
    };

  private:
    friend class Scheduler;
    std::vector<Task> tasks_;
};

struct SchedulerOptions
{
    /** Real execution threads; 0 = hardware concurrency, 1 = inline. */
    unsigned threads = 0;
    /** Virtual workers for the deterministic schedule model. */
    unsigned modelWorkers = 8;
};

/**
 * Executes a TaskGraph with work stealing, then replays it through the
 * deterministic virtual-time simulation to produce the ScheduleReport.
 * The first exception thrown by a task is rethrown from run() after
 * the graph drains (downstream task bodies are skipped, not run
 * against missing inputs).
 */
class Scheduler
{
  public:
    explicit Scheduler(SchedulerOptions opts = {}) : opts_(opts) {}

    ScheduleReport run(TaskGraph &graph);

  private:
    SchedulerOptions opts_;
};

/**
 * Commits results in strict sequence order: `submit(seq, fn)` may be
 * called from any thread in any order, but the closures run exactly in
 * increasing `seq` order (0,1,2,...), each under the sink's lock.
 * This is the determinism keystone: side effects that are order
 * sensitive (cache population, failure attribution, report lines) go
 * through the sink, so shipped bytes and reports are identical at any
 * thread count.
 */
class OrderedSink
{
  public:
    explicit OrderedSink(uint64_t firstSeq = 0) : next_(firstSeq) {}

    void submit(uint64_t seq, std::function<void()> commit);

    /** Sequence number the sink is waiting for next. */
    uint64_t
    committed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return next_;
    }

  private:
    mutable std::mutex mu_;
    std::map<uint64_t, std::function<void()>> pending_;
    uint64_t next_ = 0;
};

} // namespace propeller::sched

#endif // PROPELLER_SCHED_SCHED_H
