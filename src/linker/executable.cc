#include "linker/executable.h"

namespace propeller::linker {

const FuncRange *
Executable::findSymbol(const std::string &name) const
{
    for (const auto &range : symbols) {
        if (range.name == name)
            return &range;
    }
    return nullptr;
}

} // namespace propeller::linker
