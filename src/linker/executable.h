#ifndef PROPELLER_LINKER_EXECUTABLE_H
#define PROPELLER_LINKER_EXECUTABLE_H

/**
 * @file
 * The linked executable image.
 *
 * Substitute for a fully linked x86-64 ELF binary.  Carries everything the
 * downstream consumers need:
 *
 *  - the machine simulator executes @ref Executable::text;
 *  - the Phase 3 whole-program analysis consumes @ref Executable::bbAddrMap
 *    (absolute-address form of the .bb_addr_map metadata);
 *  - BOLT discovers functions from @ref Executable::symbols and
 *    disassembles @ref Executable::text;
 *  - the Figure 6 bench reads @ref Executable::sizes.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace propeller::linker {

/** Final address range of one text-section symbol. */
struct FuncRange
{
    std::string name;           ///< Symbol (function or cluster).
    std::string parentFunction; ///< Owning function.
    uint64_t start = 0;
    uint64_t end = 0;
    bool isPrimary = false; ///< Function entry symbol vs. extra cluster.
    bool isHandAsm = false; ///< Hand-written assembly (unreliable disasm).
};

/** One machine basic block at its final address. */
struct ExecBlock
{
    uint32_t bbId = 0;
    uint64_t address = 0;
    uint32_t size = 0;
    uint8_t flags = 0; ///< elf::BbFlags.

    /** Stable fingerprint from the v2 address map (0 if v1 metadata). */
    uint64_t hash = 0;

    /** Static successor block ids from the v2 address map. */
    std::vector<uint32_t> succs;
};

/** Absolute-address BB map for one function. */
struct ExecFuncMap
{
    std::string function;
    std::vector<ExecBlock> blocks;

    /** Whole-function fingerprint from the v2 address map (0 if v1). */
    uint64_t functionHash = 0;
};

/**
 * Final address range covered by one .eh_frame FDE.
 *
 * FrameDescriptor::codeLength is stamped at codegen time, *before* the
 * linker's branch relaxation shrinks sections — so the authoritative
 * unwind coverage must be re-derived at link time from the final section
 * layout.  The static verifier (src/analysis) requires every text symbol
 * range to be covered exactly; a gap here is the paper's section 2.2
 * failure mode (C++ exceptions unwinding through moved code).
 */
struct FrameCoverage
{
    std::string sectionSymbol;
    uint64_t start = 0;
    uint64_t end = 0;
};

/**
 * Startup code-integrity check (FIPS-140-2 analogue, paper section 5.8).
 *
 * The expected hash is application data baked in at (re)link time; the
 * machine hashes the function's current primary-range bytes at startup and
 * refuses to run on mismatch.  Binary rewriters that move code without
 * being able to regenerate this application constant produce binaries that
 * crash at startup — the failure mode the paper reports for BOLT on three
 * of four warehouse-scale applications.
 */
struct IntegrityCheck
{
    std::string function;
    uint64_t expectedHash = 0;
};

/** Final binary size breakdown, one bucket per Figure 6 component. */
struct SectionSizes
{
    uint64_t text = 0;
    uint64_t ehFrame = 0;
    uint64_t bbAddrMap = 0;
    uint64_t relocs = 0;
    uint64_t debug = 0;
    uint64_t other = 0;

    uint64_t
    total() const
    {
        return text + ehFrame + bbAddrMap + relocs + debug + other;
    }
};

/** A linked (or post-link-rewritten) binary. */
struct Executable
{
    std::string name;

    uint64_t textBase = 0;
    uint64_t entryAddress = 0;
    std::vector<uint8_t> text; ///< Code image starting at textBase.

    /**
     * Binary identity: content hash of the linked text plus the section
     * layout (every symbol's name and address range).  Stamped into the
     * Profile header by the profiler so Phase 3 can detect that a profile
     * was collected on a *different* build and must go through the stale
     * matcher instead of the address-based fast path.
     */
    uint64_t identityHash = 0;

    /** Text is mapped on 2 MiB huge pages (affects the iTLB model). */
    bool hugePagesText = false;

    std::vector<FuncRange> symbols;
    std::vector<ExecFuncMap> bbAddrMap;
    std::vector<IntegrityCheck> integrityChecks;

    /**
     * Unwind coverage per text section, in layout order (final
     * addresses; see FrameCoverage).  Empty for rewritten binaries that
     * do not regenerate unwind metadata (e.g. the BOLT path).
     */
    std::vector<FrameCoverage> frames;

    SectionSizes sizes;

    /** End address of the text image. */
    uint64_t textEnd() const { return textBase + text.size(); }

    /** Whether @p addr lies inside the text image. */
    bool
    containsText(uint64_t addr) const
    {
        return addr >= textBase && addr < textEnd();
    }

    /** Look up a symbol range by name; nullptr if absent. */
    const FuncRange *findSymbol(const std::string &name) const;

    /** Total on-disk size (headers + all sections). */
    uint64_t fileSize() const { return 4096 + sizes.total(); }
};

} // namespace propeller::linker

#endif // PROPELLER_LINKER_EXECUTABLE_H
