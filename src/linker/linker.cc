#include "linker/linker.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "isa/isa.h"
#include "support/check.h"
#include "support/hash.h"

namespace propeller::linker {

namespace {

using elf::BranchSite;
using elf::ObjectFile;
using elf::Section;
using elf::SectionType;
using isa::Opcode;
using support::ErrorCode;
using support::makeError;

constexpr uint64_t kHugePage = 2 * 1024 * 1024;

uint64_t
alignUp(uint64_t value, uint64_t alignment)
{
    if (alignment <= 1)
        return value;
    return (value + alignment - 1) / alignment * alignment;
}

/** Encoding state of one branch site. */
enum class SiteState : uint8_t { Deleted, Short, Long };

struct Site
{
    const BranchSite *src = nullptr;
    uint32_t sect = 0;   ///< Owning internal section index.
    uint64_t offset = 0; ///< Offset within section (per iteration).
    int32_t targetSect = -1;
    SiteState state = SiteState::Long;

    bool isCall() const { return src->op == Opcode::Call; }

    uint64_t
    encodedSize() const
    {
        switch (state) {
          case SiteState::Deleted:
            return 0;
          case SiteState::Short:
            return isa::Instruction::sizeOf(src->op == Opcode::JccNear
                                                ? Opcode::JccShort
                                                : Opcode::JmpShort);
          case SiteState::Long:
            return isa::Instruction::sizeOf(src->op);
        }
        return 0;
    }
};

/** One flattened content unit of an internal section. */
struct Chunk
{
    int32_t blockSlot = -1;                    ///< Starts this block slot.
    const std::vector<uint8_t> *bytes = nullptr; ///< May be empty.
    int32_t siteIndex = -1;                    ///< Trailing branch site.
};

/** Internal, relaxable representation of one input text section. */
struct Sect
{
    std::string symbol;
    std::string parentFunction;
    std::string objectName;
    bool isPrimary = false;
    bool isHandAsm = false;
    uint32_t alignment = 1;

    std::vector<Chunk> chunks;
    std::vector<uint32_t> blockIds;   ///< Slot -> bb id.
    std::vector<uint8_t> blockFlags;  ///< Slot -> BbFlags.
    std::unordered_map<uint32_t, uint32_t> slotOf;

    // Recomputed each sizing iteration.
    std::vector<uint64_t> blockOffsets;
    uint64_t addr = 0;
    uint64_t size = 0;
};

} // namespace

support::StatusOr<Executable>
linkChecked(const std::vector<ObjectFile> &objects, const Options &opts,
            LinkStats *stats_out)
{
    LinkStats stats;
    MemoryMeter meter;

    // ---- Gather sections and symbols -----------------------------------
    std::vector<Sect> sects;
    std::vector<Site> sites;
    std::unordered_map<std::string, uint32_t> sect_by_symbol;

    for (const auto &obj : objects) {
        stats.inputBytes += obj.sizeInBytes();

        // Map section index -> defining symbol within this object.
        std::unordered_map<uint32_t, const elf::Symbol *> sym_of_section;
        for (const auto &sym : obj.symbols)
            sym_of_section[sym.sectionIndex] = &sym;

        for (size_t si = 0; si < obj.sections.size(); ++si) {
            const Section &sec = obj.sections[si];
            if (sec.type != SectionType::Text)
                continue;
            auto sym_it = sym_of_section.find(static_cast<uint32_t>(si));
            if (sym_it == sym_of_section.end())
                return makeError(ErrorCode::kMalformed,
                                 "object " + obj.name + ": text section " +
                                     sec.name + " has no defining symbol");
            const elf::Symbol *sym = sym_it->second;

            Sect sect;
            sect.symbol = sym->name;
            sect.parentFunction = sym->parentFunction;
            sect.objectName = obj.name;
            sect.isPrimary = sym->kind == elf::SymbolKind::Function;
            sect.isHandAsm = sec.isHandAsm;
            sect.alignment = sec.alignment;

            for (const auto &piece : sec.pieces) {
                Chunk chunk;
                if (piece.block) {
                    chunk.blockSlot =
                        static_cast<int32_t>(sect.blockIds.size());
                    sect.slotOf.emplace(piece.block->bbId,
                                        sect.blockIds.size());
                    sect.blockIds.push_back(piece.block->bbId);
                    sect.blockFlags.push_back(piece.block->flags);
                }
                chunk.bytes = &piece.bytes;
                if (piece.site) {
                    chunk.siteIndex = static_cast<int32_t>(sites.size());
                    Site site;
                    site.src = &*piece.site;
                    site.sect = static_cast<uint32_t>(sects.size());
                    sites.push_back(site);
                }
                sect.chunks.push_back(chunk);
            }
            sect.blockOffsets.resize(sect.blockIds.size(), 0);

            bool inserted =
                sect_by_symbol
                    .emplace(sect.symbol,
                             static_cast<uint32_t>(sects.size()))
                    .second;
            if (!inserted)
                return makeError(ErrorCode::kMalformed,
                                 "duplicate section symbol " + sect.symbol +
                                     " (object " + obj.name + ")");
            sects.push_back(std::move(sect));
        }
    }

    // Resolve every site's target section now that all symbols are known,
    // and validate block-level targets up front so the layout loop below
    // can index without re-checking.
    for (auto &site : sites) {
        auto it = sect_by_symbol.find(site.src->targetSymbol);
        if (it == sect_by_symbol.end())
            return makeError(ErrorCode::kUnresolved,
                             "unresolved symbol " + site.src->targetSymbol +
                                 " (referenced from " +
                                 sects[site.sect].symbol + ")");
        site.targetSect = static_cast<int32_t>(it->second);
        if (site.src->targetBb != elf::kSectionStart &&
            !sects[it->second].slotOf.count(site.src->targetBb))
            return makeError(ErrorCode::kUnresolved,
                             "branch to unmapped block #" +
                                 std::to_string(site.src->targetBb) +
                                 " in " + site.src->targetSymbol);
    }

    // Modelled memory: runtime floor (allocator, string tables, output
    // bookkeeping) + inputs buffered + internal structures.
    meter.charge(192 * 1024);
    meter.charge(stats.inputBytes);
    meter.charge(sects.size() * 160 + sites.size() * 56);
    uint64_t block_count = 0;
    for (const auto &s : sects)
        block_count += s.blockIds.size();
    meter.charge(block_count * 24);

    uint64_t base = opts.textBase;
    if (opts.hugePagesText)
        base = alignUp(base, kHugePage);

    // ---- Layout + relaxation under the overflow quarantine -------------
    //
    // The symbol ordering file can place a function's sections anywhere in
    // the image; at real scale a bad ordering (or a hostile knob setting)
    // can push a branch past its encodable displacement.  Rather than
    // failing the whole link, the offending *function* is quarantined:
    // its sections drop out of the ordered prefix back to input order,
    // and sizing reruns.  Each round quarantines at least one new
    // function, so the loop terminates.
    std::vector<uint32_t> order;
    order.reserve(sects.size());

    auto computeLayout = [&]() {
        uint64_t cursor = base;
        for (uint32_t idx : order) {
            Sect &sect = sects[idx];
            sect.addr = alignUp(cursor, sect.alignment);
            uint64_t off = 0;
            for (const Chunk &chunk : sect.chunks) {
                if (chunk.blockSlot >= 0)
                    sect.blockOffsets[chunk.blockSlot] = off;
                off += chunk.bytes->size();
                if (chunk.siteIndex >= 0) {
                    Site &site = sites[chunk.siteIndex];
                    site.offset = off;
                    off += site.encodedSize();
                }
            }
            sect.size = off;
            cursor = sect.addr + off;
        }
        return cursor;
    };

    auto targetAddress = [&](const Site &site) {
        const Sect &target = sects[site.targetSect];
        if (site.src->targetBb == elf::kSectionStart)
            return target.addr;
        // Validated when sites were resolved above.
        auto it = target.slotOf.find(site.src->targetBb);
        PROPELLER_CHECK(it != target.slotOf.end(),
                        "branch to unmapped block");
        return target.addr + target.blockOffsets[it->second];
    };

    // Displacements the near (rel32) forms can encode, possibly narrowed
    // by the test knob.
    const int64_t max_disp =
        std::min<int64_t>(opts.maxBranchDisplacement, INT32_MAX);

    std::set<std::string> quarantined_fns;
    uint64_t image_end = 0;
    for (;;) {
        // Global layout order (symbol ordering file, paper 3.4), minus
        // quarantined functions.
        order.clear();
        std::vector<bool> placed(sects.size(), false);
        for (const auto &name : opts.symbolOrder) {
            auto it = sect_by_symbol.find(name);
            if (it == sect_by_symbol.end() || placed[it->second])
                continue;
            if (quarantined_fns.count(sects[it->second].parentFunction))
                continue;
            placed[it->second] = true;
            order.push_back(it->second);
        }
        for (uint32_t i = 0; i < sects.size(); ++i) {
            if (!placed[i])
                order.push_back(i);
        }

        // All sites start Long (compiler-emitted near forms).
        for (auto &site : sites)
            site.state = SiteState::Long;
        constexpr int kMaxIterations = 64;
        constexpr int kGrowOnlyAfter = 48;
        bool changed = true;
        int iter = 0;
        while (changed && iter < kMaxIterations) {
            ++iter;
            computeLayout();
            changed = false;
            for (auto &site : sites) {
                if (site.isCall())
                    continue;
                uint64_t site_start = sects[site.sect].addr + site.offset;
                uint64_t target = targetAddress(site);

                SiteState desired = SiteState::Long;
                if (opts.relax) {
                    // Fall-through deletion: the jump lands exactly past
                    // its own encoding, so removing it preserves control
                    // flow.
                    if (site.src->isFallThrough &&
                        target == site_start + site.encodedSize()) {
                        desired = SiteState::Deleted;
                    } else {
                        Opcode short_op = site.src->op == Opcode::JccNear
                                              ? Opcode::JccShort
                                              : Opcode::JmpShort;
                        uint64_t short_size =
                            isa::Instruction::sizeOf(short_op);
                        int64_t disp = static_cast<int64_t>(target) -
                                       static_cast<int64_t>(site_start +
                                                            short_size);
                        desired = isa::fitsRel8(disp) ? SiteState::Short
                                                      : SiteState::Long;
                    }
                }
                if (desired != site.state) {
                    // Late iterations only allow growing, which
                    // guarantees convergence even with alignment-induced
                    // oscillation.
                    if (iter > kGrowOnlyAfter &&
                        desired != SiteState::Long)
                        continue;
                    site.state = desired;
                    changed = true;
                }
            }
        }
        stats.relaxIterations = static_cast<uint32_t>(iter);
        image_end = computeLayout();

        // Scan every surviving site for displacement overflow.  Short
        // forms were verified by fitsRel8 during sizing; near forms
        // (including calls) must fit max_disp.
        std::set<std::string> offenders;
        for (const auto &site : sites) {
            if (site.state != SiteState::Long)
                continue;
            uint64_t site_start = sects[site.sect].addr + site.offset;
            int64_t disp = static_cast<int64_t>(targetAddress(site)) -
                           static_cast<int64_t>(site_start +
                                                site.encodedSize());
            if (disp > max_disp || disp < -max_disp - 1)
                offenders.insert(sects[site.sect].parentFunction);
        }
        if (offenders.empty())
            break;

        bool progress = false;
        for (const auto &fn : offenders)
            progress |= quarantined_fns.insert(fn).second;
        if (!opts.quarantineOnOverflow || !progress)
            return makeError(ErrorCode::kOutOfRange,
                             "branch displacement overflow in function " +
                                 *offenders.begin());
    }
    stats.sectionsLinked = static_cast<uint32_t>(order.size());
    stats.quarantinedFunctions =
        static_cast<uint32_t>(quarantined_fns.size());
    stats.quarantined.assign(quarantined_fns.begin(),
                             quarantined_fns.end());

    for (const auto &site : sites) {
        if (site.state == SiteState::Deleted)
            ++stats.fallThroughsDeleted;
        else if (site.state == SiteState::Short)
            ++stats.branchesShrunk;
    }

    // ---- Emit the final image ------------------------------------------
    Executable exe;
    exe.name = opts.outputName;
    exe.textBase = base;
    exe.hugePagesText = opts.hugePagesText;
    exe.text.assign(image_end - base,
                    static_cast<uint8_t>(Opcode::Nop));
    meter.charge(exe.text.size());

    for (uint32_t idx : order) {
        const Sect &sect = sects[idx];
        uint64_t pos = sect.addr - base;
        std::vector<uint8_t> encoded;
        for (const Chunk &chunk : sect.chunks) {
            std::copy(chunk.bytes->begin(), chunk.bytes->end(),
                      exe.text.begin() + pos);
            pos += chunk.bytes->size();
            if (chunk.siteIndex < 0)
                continue;
            const Site &site = sites[chunk.siteIndex];
            if (site.state == SiteState::Deleted)
                continue;
            isa::Instruction inst;
            switch (site.state) {
              case SiteState::Short:
                inst.op = site.src->op == Opcode::JccNear
                              ? Opcode::JccShort
                              : Opcode::JmpShort;
                break;
              case SiteState::Long:
                inst.op = site.src->op;
                break;
              case SiteState::Deleted:
                break;
            }
            inst.flags = site.src->flags;
            inst.bias = site.src->bias;
            inst.branchId = site.src->branchId;
            uint64_t site_start = sect.addr + site.offset;
            int64_t disp = static_cast<int64_t>(targetAddress(site)) -
                           static_cast<int64_t>(site_start +
                                                site.encodedSize());
            // The overflow scan above guarantees encodability here.
            PROPELLER_CHECK(disp >= INT32_MIN && disp <= INT32_MAX,
                            "branch displacement overflow");
            inst.rel = static_cast<int32_t>(disp);
            encoded.clear();
            inst.encode(encoded);
            PROPELLER_CHECK(encoded.size() == site.encodedSize(),
                            "encoded size mismatch");
            std::copy(encoded.begin(), encoded.end(),
                      exe.text.begin() + pos);
            pos += encoded.size();
        }
        PROPELLER_CHECK(pos == sect.addr - base + sect.size,
                        "section emit cursor mismatch");
    }

    // ---- Symbols, BB map, integrity checks ------------------------------
    std::unordered_map<std::string, size_t> func_map_index;
    std::vector<ExecFuncMap> func_maps;
    std::unordered_map<std::string, bool> addr_map_kept;
    // Decoded from the actual section *bytes*, not the structured
    // ObjectFile field: the bytes are what a cache or disk corruption
    // hits, and decoding them here is what turns that corruption into a
    // per-object metadata rejection instead of silent bad mappings.
    std::unordered_map<std::string, std::vector<elf::FunctionAddrMap>>
        decoded_maps;
    for (const auto &obj : objects) {
        int sect_idx = obj.findSection(".bb_addr_map");
        bool dropped =
            opts.stripAddrMaps ||
            (opts.dropAddrMapsOf && opts.dropAddrMapsOf->count(obj.name));
        bool kept = sect_idx >= 0 && !dropped;
        if (kept) {
            auto maps =
                elf::decodeAddrMapsChecked(obj.sections[sect_idx].bytes);
            if (maps.ok()) {
                decoded_maps[obj.name] = std::move(maps).value();
            } else {
                // Degrade: this object's functions become unprofiled
                // (baseline layout downstream), the relink proceeds.
                kept = false;
                ++stats.addrMapsRejected;
                stats.rejectedAddrMapObjects.push_back(obj.name);
            }
        }
        addr_map_kept[obj.name] = kept;
    }

    // Stale-profile fingerprints live in the object address maps (the
    // emitted sections only carry block marks); index them by function so
    // the final ExecFuncMap can be annotated below.
    struct FuncFp
    {
        uint64_t functionHash = 0;
        std::unordered_map<uint32_t, const elf::BbEntry *> blocks;
    };
    std::unordered_map<std::string, FuncFp> fp_of;
    for (const auto &obj : objects) {
        if (!addr_map_kept[obj.name])
            continue;
        for (const auto &map : decoded_maps[obj.name]) {
            FuncFp &fp = fp_of[map.functionName];
            fp.functionHash = map.functionHash;
            for (const auto &range : map.ranges) {
                for (const auto &bb : range.blocks)
                    fp.blocks.emplace(bb.bbId, &bb);
            }
        }
    }

    for (uint32_t idx : order) {
        const Sect &sect = sects[idx];
        FuncRange range;
        range.name = sect.symbol;
        range.parentFunction = sect.parentFunction;
        range.start = sect.addr;
        range.end = sect.addr + sect.size;
        range.isPrimary = sect.isPrimary;
        range.isHandAsm = sect.isHandAsm;
        exe.symbols.push_back(std::move(range));

        if (sect.isHandAsm || !addr_map_kept[sect.objectName])
            continue;

        auto [it, inserted] =
            func_map_index.emplace(sect.parentFunction, func_maps.size());
        if (inserted)
            func_maps.push_back(ExecFuncMap{sect.parentFunction, {}});
        ExecFuncMap &map = func_maps[it->second];

        const FuncFp *fp = nullptr;
        if (auto fit = fp_of.find(sect.parentFunction); fit != fp_of.end())
            fp = &fit->second;
        if (fp)
            map.functionHash = fp->functionHash;

        for (size_t slot = 0; slot < sect.blockIds.size(); ++slot) {
            ExecBlock block;
            block.bbId = sect.blockIds[slot];
            block.address = sect.addr + sect.blockOffsets[slot];
            uint64_t next = slot + 1 < sect.blockIds.size()
                                ? sect.addr + sect.blockOffsets[slot + 1]
                                : sect.addr + sect.size;
            block.size = static_cast<uint32_t>(next - block.address);
            block.flags = sect.blockFlags[slot];
            if (fp) {
                auto bit = fp->blocks.find(block.bbId);
                if (bit != fp->blocks.end()) {
                    block.hash = bit->second->hash;
                    block.succs = bit->second->succs;
                }
            }
            map.blocks.push_back(std::move(block));
        }
    }
    exe.bbAddrMap = std::move(func_maps);

    // Re-derive unwind coverage from the *final* layout: the codegen-time
    // FrameDescriptor::codeLength predates relaxation, so each FDE's
    // covered range is the post-relaxation section extent.
    {
        std::unordered_set<std::string> fde_symbols;
        for (const auto &obj : objects) {
            for (const auto &fde : obj.frames)
                fde_symbols.insert(fde.sectionSymbol);
        }
        for (uint32_t idx : order) {
            const Sect &sect = sects[idx];
            if (!fde_symbols.count(sect.symbol))
                continue;
            exe.frames.push_back(FrameCoverage{
                sect.symbol, sect.addr, sect.addr + sect.size});
        }
    }

    // Binary identity: the linked text content plus the section layout.
    // Any relink that moves or changes code — new compiler output, a
    // different cluster assignment, even a pure reordering — produces a
    // different identity, which is exactly when address-based profile
    // mapping stops being sound.
    {
        uint64_t id = fnv1a(exe.text);
        id = hashCombine(id, exe.textBase);
        for (const auto &sym : exe.symbols) {
            id = hashCombine(id, fnv1a(sym.name));
            id = hashCombine(id, sym.start);
            id = hashCombine(id, sym.end);
        }
        exe.identityHash = id;
    }

    // Entry point.
    auto entry_it = sect_by_symbol.find(opts.entrySymbol);
    if (entry_it == sect_by_symbol.end())
        return makeError(ErrorCode::kUnresolved,
                         "entry symbol " + opts.entrySymbol + " not found");
    exe.entryAddress = sects[entry_it->second].addr;

    // Startup integrity checks: hash the primary range of each checked
    // function as it exists in this image.
    for (const auto &obj : objects) {
        for (const auto &fn : obj.integrityCheckedFunctions) {
            auto it = sect_by_symbol.find(fn);
            if (it == sect_by_symbol.end())
                return makeError(ErrorCode::kUnresolved,
                                 "integrity-checked function " + fn +
                                     " has no section symbol");
            const Sect &sect = sects[it->second];
            IntegrityCheck check;
            check.function = fn;
            check.expectedHash =
                fnv1a(exe.text.data() + (sect.addr - base), sect.size);
            exe.integrityChecks.push_back(std::move(check));
        }
    }

    // ---- Size breakdown (Figure 6) --------------------------------------
    exe.sizes.text = exe.text.size();
    for (const auto &obj : objects) {
        for (const auto &sec : obj.sections) {
            switch (sec.type) {
              case SectionType::EhFrame:
                exe.sizes.ehFrame += sec.size();
                break;
              case SectionType::BbAddrMap:
                if (addr_map_kept[obj.name])
                    exe.sizes.bbAddrMap += sec.size();
                break;
              case SectionType::Debug:
                exe.sizes.debug += sec.size();
                break;
              case SectionType::RoData:
              case SectionType::Other:
                exe.sizes.other += sec.size();
                break;
              case SectionType::Text:
                if (opts.emitRelocs) {
                    exe.sizes.relocs +=
                        sec.relocationCount() * elf::kRelaEntrySize;
                }
                break;
            }
        }
        if (opts.emitRelocs)
            exe.sizes.relocs += obj.debugRelocs * elf::kRelaEntrySize;
    }

    stats.peakMemory = meter.peak();
    if (opts.meter) {
        // Pulse the external phase meter with this action's peak.
        opts.meter->charge(stats.peakMemory);
        opts.meter->release(stats.peakMemory);
    }
    if (stats_out)
        *stats_out = stats;
    return exe;
}

Executable
link(const std::vector<ObjectFile> &objects, const Options &opts,
     LinkStats *stats_out)
{
    auto exe = linkChecked(objects, opts, stats_out);
    PROPELLER_CHECK(exe.ok(), exe.status().toString().c_str());
    return std::move(exe).value();
}

} // namespace propeller::linker
