#ifndef PROPELLER_LINKER_LINKER_H
#define PROPELLER_LINKER_LINKER_H

/**
 * @file
 * The linker.
 *
 * Substitute for lld with the basic-block-sections support of paper
 * section 4.  Responsibilities:
 *
 *  - gather text sections from all input objects;
 *  - order them by the symbol ordering file (ld_prof.txt, paper 3.4); the
 *    remainder keeps input order;
 *  - run the unified branch sizing / relaxation pass (paper 4.2): pick
 *    short vs. near encodings for every branch site and delete explicit
 *    fall-through jumps whose target ends up immediately next — all without
 *    disassembling a single instruction (branch sites are relocations);
 *  - resolve every relocation and emit the final image;
 *  - produce the absolute-address BB map, symbol ranges, integrity-check
 *    table and the Figure 6 size breakdown.
 */

#include <set>
#include <string>
#include <vector>

#include "elf/object.h"
#include "linker/executable.h"
#include "support/memory_meter.h"

namespace propeller::linker {

/** Link options. */
struct Options
{
    /** Output binary name. */
    std::string outputName = "a.out";

    /** Entry function symbol. */
    std::string entrySymbol;

    /**
     * Symbol ordering file contents (ld_prof.txt): text sections whose
     * symbol appears here are laid out first, in this order.
     */
    std::vector<std::string> symbolOrder;

    /** Run the relaxation pass (fall-through deletion + shrinking). */
    bool relax = true;

    /** Base virtual address of the text image. */
    uint64_t textBase = 0x400000;

    /** Map text on 2 MiB huge pages (2 MiB-aligns the base). */
    bool hugePagesText = false;

    /**
     * Drop .bb_addr_map sections of these input objects from the size
     * accounting (the paper's linker drops metadata of cached cold objects
     * in the final relink, section 3.4).
     */
    const std::set<std::string> *dropAddrMapsOf = nullptr;

    /** Drop all .bb_addr_map sections (plain baseline binaries). */
    bool stripAddrMaps = false;

    /**
     * Keep static relocations in the output (--emit-relocs), required by
     * BOLT's metadata binaries; counted in the Figure 6 "relocs" bucket.
     */
    bool emitRelocs = false;

    /** Modelled memory meter to charge (optional). */
    MemoryMeter *meter = nullptr;
};

/** Link-time statistics. */
struct LinkStats
{
    uint64_t inputBytes = 0;      ///< Serialized size of all inputs.
    uint32_t sectionsLinked = 0;  ///< Text sections placed.
    uint32_t fallThroughsDeleted = 0;
    uint32_t branchesShrunk = 0;  ///< Near forms relaxed to short.
    uint32_t relaxIterations = 0;
    uint64_t peakMemory = 0;      ///< Modelled peak bytes.
};

/**
 * Link @p objects into an executable.
 *
 * Asserts on unresolved symbols or duplicate section symbols — in this
 * closed world those are always producer bugs.
 */
Executable link(const std::vector<elf::ObjectFile> &objects,
                const Options &opts, LinkStats *stats = nullptr);

} // namespace propeller::linker

#endif // PROPELLER_LINKER_LINKER_H
