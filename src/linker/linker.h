#ifndef PROPELLER_LINKER_LINKER_H
#define PROPELLER_LINKER_LINKER_H

/**
 * @file
 * The linker.
 *
 * Substitute for lld with the basic-block-sections support of paper
 * section 4.  Responsibilities:
 *
 *  - gather text sections from all input objects;
 *  - order them by the symbol ordering file (ld_prof.txt, paper 3.4); the
 *    remainder keeps input order;
 *  - run the unified branch sizing / relaxation pass (paper 4.2): pick
 *    short vs. near encodings for every branch site and delete explicit
 *    fall-through jumps whose target ends up immediately next — all without
 *    disassembling a single instruction (branch sites are relocations);
 *  - resolve every relocation and emit the final image;
 *  - produce the absolute-address BB map, symbol ranges, integrity-check
 *    table and the Figure 6 size breakdown.
 */

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "elf/object.h"
#include "linker/executable.h"
#include "support/memory_meter.h"
#include "support/status.h"

namespace propeller::linker {

/** Link options. */
struct Options
{
    /** Output binary name. */
    std::string outputName = "a.out";

    /** Entry function symbol. */
    std::string entrySymbol;

    /**
     * Symbol ordering file contents (ld_prof.txt): text sections whose
     * symbol appears here are laid out first, in this order.
     */
    std::vector<std::string> symbolOrder;

    /** Run the relaxation pass (fall-through deletion + shrinking). */
    bool relax = true;

    /** Base virtual address of the text image. */
    uint64_t textBase = 0x400000;

    /** Map text on 2 MiB huge pages (2 MiB-aligns the base). */
    bool hugePagesText = false;

    /**
     * Drop .bb_addr_map sections of these input objects from the size
     * accounting (the paper's linker drops metadata of cached cold objects
     * in the final relink, section 3.4).
     */
    const std::set<std::string> *dropAddrMapsOf = nullptr;

    /** Drop all .bb_addr_map sections (plain baseline binaries). */
    bool stripAddrMaps = false;

    /**
     * Keep static relocations in the output (--emit-relocs), required by
     * BOLT's metadata binaries; counted in the Figure 6 "relocs" bucket.
     */
    bool emitRelocs = false;

    /** Modelled memory meter to charge (optional). */
    MemoryMeter *meter = nullptr;

    /**
     * Largest branch displacement magnitude the target encodes.  The
     * default matches rel32; tests lower it to exercise the overflow
     * quarantine at model scale.
     */
    int64_t maxBranchDisplacement = INT32_MAX;

    /**
     * On displacement overflow, quarantine the offending function —
     * revert its sections to input order, dropping its optimized
     * layout — instead of failing the whole link (paper §6: never ship
     * a broken binary; degrade per function).
     */
    bool quarantineOnOverflow = true;
};

/** Link-time statistics. */
struct LinkStats
{
    uint64_t inputBytes = 0;      ///< Serialized size of all inputs.
    uint32_t sectionsLinked = 0;  ///< Text sections placed.
    uint32_t fallThroughsDeleted = 0;
    uint32_t branchesShrunk = 0;  ///< Near forms relaxed to short.
    uint32_t relaxIterations = 0;
    uint64_t peakMemory = 0;      ///< Modelled peak bytes.

    /** Functions reverted to input-order layout (overflow quarantine). */
    uint32_t quarantinedFunctions = 0;
    std::vector<std::string> quarantined; ///< Their names.

    /** Input objects whose .bb_addr_map bytes failed to decode. */
    uint32_t addrMapsRejected = 0;
    std::vector<std::string> rejectedAddrMapObjects; ///< Their names.
};

/**
 * Link @p objects into an executable.
 *
 * Corrupt input is a typed error (unresolved symbols, duplicate section
 * symbols, branches to unmapped blocks, a missing entry symbol) — the
 * caller decides whether to abort the build or fall back.  Two failure
 * classes degrade instead of failing:
 *
 *  - a kept object whose .bb_addr_map section bytes do not decode loses
 *    its metadata (functions become unprofiled; counted in
 *    LinkStats::addrMapsRejected);
 *  - a branch displacement overflow quarantines the offending function
 *    back to input order (LinkStats::quarantined) when
 *    Options::quarantineOnOverflow is set.
 */
support::StatusOr<Executable>
linkChecked(const std::vector<elf::ObjectFile> &objects, const Options &opts,
            LinkStats *stats = nullptr);

/**
 * Link @p objects, aborting on malformed input (trusted-input paths —
 * in a closed-world build those failures are always producer bugs).
 */
Executable link(const std::vector<elf::ObjectFile> &objects,
                const Options &opts, LinkStats *stats = nullptr);

} // namespace propeller::linker

#endif // PROPELLER_LINKER_LINKER_H
