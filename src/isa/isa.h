#ifndef PROPELLER_ISA_ISA_H
#define PROPELLER_ISA_ISA_H

/**
 * @file
 * The synthetic target ISA.
 *
 * Substitute for x86-64 (see DESIGN.md).  The properties Propeller's
 * mechanisms depend on are preserved faithfully:
 *
 *  - variable-length instructions (1 to 11 bytes);
 *  - short (rel8) and near (rel32) branch forms, enabling the linker
 *    relaxation pass of paper section 4.2;
 *  - explicit unconditional jumps for fall-through edges between basic
 *    block sections;
 *  - direct calls with rel32 displacements resolved via relocations;
 *  - an undefined-opcode space, so that embedded data in hand-written
 *    assembly misleads disassembly-driven tools (paper sections 1.1, 5.8).
 *
 * Conditional branches additionally carry a layout-invariant identity:
 * a 32-bit branch id plus an 8-bit bias.  The machine simulator derives the
 * branch direction from (branch id, per-branch occurrence counter, run
 * seed), never from the instruction's address, so binaries with different
 * code layouts execute bit-identical logical work and can be compared
 * cycle-for-cycle.  An `invert` flag lets optimizers flip branch polarity
 * (retarget the Jcc at the other successor) without altering semantics.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace propeller::isa {

/** Opcode byte values.  Gaps in the byte space decode as invalid. */
enum class Opcode : uint8_t {
    Nop = 0x90,      ///< 1 byte.  Padding / landing-pad disambiguation.
    Halt = 0xF4,     ///< 1 byte.  Stop the machine.
    Ret = 0xC3,      ///< 1 byte.  Return to caller.
    Alu = 0x01,      ///< 3 bytes: op, reg, imm8.  Generic work.
    AluWide = 0x02,  ///< 6 bytes: op, reg, imm32.  Generic wide work.
    Load = 0x8B,     ///< 4 bytes: op, reg, disp16.
    Store = 0x89,    ///< 4 bytes: op, reg, disp16.
    JmpShort = 0xEB, ///< 2 bytes: op, rel8.
    JmpNear = 0xE9,  ///< 5 bytes: op, rel32.
    JccShort = 0x70, ///< 8 bytes: op, flags, bias, id32, rel8.
    JccNear = 0x71,  ///< 11 bytes: op, flags, bias, id32, rel32.
    Call = 0xE8,     ///< 5 bytes: op, rel32.
    Prefetch = 0x18, ///< 4 bytes: op, lookahead, site16.  Software prefetch.
};

/** Flag bits in the Jcc flags byte. */
enum JccFlags : uint8_t {
    /** The branch targets the 'false' successor; direction is inverted. */
    kJccInvert = 0x01,

    /**
     * Periodic direction: logically taken except every bias-th
     * occurrence (loop back-edges with deterministic trip counts).
     * Without this flag the direction is a Bernoulli draw with
     * probability bias/256.
     */
    kJccPeriodic = 0x02,
};

/**
 * A decoded (or to-be-encoded) machine instruction.
 *
 * Branch displacements (@ref rel) are relative to the *end* of the
 * instruction, as on x86.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    uint8_t reg = 0;       ///< Register operand for Alu/Load/Store.
    uint8_t flags = 0;     ///< JccFlags for conditional branches.
    uint8_t bias = 0;      ///< P(logical taken) in 1/256 units.
    uint32_t imm = 0;      ///< ALU immediate, displacement, or, for
                           ///< Prefetch, the target load-site id.
    int32_t rel = 0;       ///< Branch displacement from end of instruction.
    uint32_t branchId = 0; ///< Layout-invariant conditional-branch identity.

    /** Encoded size in bytes of this instruction. */
    size_t size() const { return sizeOf(op); }

    /** Encoded size in bytes of any instruction with opcode @p op. */
    static size_t sizeOf(Opcode op);

    bool
    isCondBranch() const
    {
        return op == Opcode::JccShort || op == Opcode::JccNear;
    }

    bool
    isUncondBranch() const
    {
        return op == Opcode::JmpShort || op == Opcode::JmpNear;
    }

    bool isCall() const { return op == Opcode::Call; }
    bool isRet() const { return op == Opcode::Ret; }
    bool isPrefetch() const { return op == Opcode::Prefetch; }

    /** True for any control transfer (jumps, calls, returns, halt). */
    bool
    isControlFlow() const
    {
        return isCondBranch() || isUncondBranch() || isCall() || isRet() ||
               op == Opcode::Halt;
    }

    /** True if execution never continues at the next instruction. */
    bool
    endsStream() const
    {
        return isUncondBranch() || isRet() || op == Opcode::Halt;
    }

    /** Append this instruction's encoding to @p out. */
    void encode(std::vector<uint8_t> &out) const;

    /** Human-readable rendering, for debugging and the examples. */
    std::string toString() const;

    bool operator==(const Instruction &other) const = default;
};

/** True if @p byte is a defined opcode (gaps decode as embedded data). */
bool isValidOpcode(uint8_t byte);

/**
 * Decode one instruction from @p data (at most @p avail bytes).
 *
 * Returns std::nullopt for invalid opcodes or truncated input — this is the
 * exact failure mode a disassembler hits on embedded data.
 */
std::optional<Instruction> decode(const uint8_t *data, size_t avail);

/** Shortest encodable branch displacement check. */
inline bool
fitsRel8(int64_t displacement)
{
    return displacement >= -128 && displacement <= 127;
}

/** Short-form opcode for a relaxable near branch, if any. */
std::optional<Opcode> shortFormOf(Opcode op);

} // namespace propeller::isa

#endif // PROPELLER_ISA_ISA_H
