#include "isa/isa.h"

#include <cstdio>

#include "support/check.h"

namespace propeller::isa {

namespace {

void
put16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(v & 0xff);
    out.push_back((v >> 8) & 0xff);
}

void
put32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(v & 0xff);
    out.push_back((v >> 8) & 0xff);
    out.push_back((v >> 16) & 0xff);
    out.push_back((v >> 24) & 0xff);
}

uint16_t
get16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0]) | (static_cast<uint16_t>(p[1]) << 8);
}

uint32_t
get32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

} // namespace

size_t
Instruction::sizeOf(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
        return 1;
      case Opcode::JmpShort:
        return 2;
      case Opcode::Alu:
        return 3;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Prefetch:
        return 4;
      case Opcode::JmpNear:
      case Opcode::Call:
        return 5;
      case Opcode::AluWide:
        return 6;
      case Opcode::JccShort:
        return 8;
      case Opcode::JccNear:
        return 11;
    }
    // Reaching here means a caller fabricated an Opcode from an unchecked
    // byte; decode() filters input bytes through isValidOpcode() first.
    PROPELLER_CHECK(false, "unknown opcode");
    return 0;
}

void
Instruction::encode(std::vector<uint8_t> &out) const
{
    out.push_back(static_cast<uint8_t>(op));
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
        break;
      case Opcode::Alu:
        out.push_back(reg);
        out.push_back(imm & 0xff);
        break;
      case Opcode::AluWide:
        out.push_back(reg);
        put32(out, imm);
        break;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Prefetch:
        out.push_back(reg);
        put16(out, imm & 0xffff);
        break;
      case Opcode::JmpShort:
        PROPELLER_CHECK(fitsRel8(rel),
                        "short jump displacement out of range");
        out.push_back(static_cast<uint8_t>(static_cast<int8_t>(rel)));
        break;
      case Opcode::JmpNear:
      case Opcode::Call:
        put32(out, static_cast<uint32_t>(rel));
        break;
      case Opcode::JccShort:
        PROPELLER_CHECK(fitsRel8(rel),
                        "short branch displacement out of range");
        out.push_back(flags);
        out.push_back(bias);
        put32(out, branchId);
        out.push_back(static_cast<uint8_t>(static_cast<int8_t>(rel)));
        break;
      case Opcode::JccNear:
        out.push_back(flags);
        out.push_back(bias);
        put32(out, branchId);
        put32(out, static_cast<uint32_t>(rel));
        break;
    }
}

bool
isValidOpcode(uint8_t byte)
{
    switch (static_cast<Opcode>(byte)) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
      case Opcode::Alu:
      case Opcode::AluWide:
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::JmpShort:
      case Opcode::JmpNear:
      case Opcode::JccShort:
      case Opcode::JccNear:
      case Opcode::Call:
      case Opcode::Prefetch:
        return true;
      default:
        return false;
    }
}

std::optional<Instruction>
decode(const uint8_t *data, size_t avail)
{
    if (avail == 0)
        return std::nullopt;
    if (!isValidOpcode(data[0]))
        return std::nullopt; // Undefined opcode: looks like embedded data.
    auto op = static_cast<Opcode>(data[0]);

    size_t size = Instruction::sizeOf(op);
    if (avail < size)
        return std::nullopt;

    Instruction inst;
    inst.op = op;
    switch (op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
        break;
      case Opcode::Alu:
        inst.reg = data[1];
        inst.imm = data[2];
        break;
      case Opcode::AluWide:
        inst.reg = data[1];
        inst.imm = get32(data + 2);
        break;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Prefetch:
        inst.reg = data[1];
        inst.imm = get16(data + 2);
        break;
      case Opcode::JmpShort:
        inst.rel = static_cast<int8_t>(data[1]);
        break;
      case Opcode::JmpNear:
      case Opcode::Call:
        inst.rel = static_cast<int32_t>(get32(data + 1));
        break;
      case Opcode::JccShort:
        inst.flags = data[1];
        inst.bias = data[2];
        inst.branchId = get32(data + 3);
        inst.rel = static_cast<int8_t>(data[7]);
        break;
      case Opcode::JccNear:
        inst.flags = data[1];
        inst.bias = data[2];
        inst.branchId = get32(data + 3);
        inst.rel = static_cast<int32_t>(get32(data + 7));
        break;
    }
    return inst;
}

std::optional<Opcode>
shortFormOf(Opcode op)
{
    switch (op) {
      case Opcode::JmpNear:
        return Opcode::JmpShort;
      case Opcode::JccNear:
        return Opcode::JccShort;
      default:
        return std::nullopt;
    }
}

std::string
Instruction::toString() const
{
    char buf[96];
    switch (op) {
      case Opcode::Nop:
        return "nop";
      case Opcode::Halt:
        return "halt";
      case Opcode::Ret:
        return "ret";
      case Opcode::Alu:
        std::snprintf(buf, sizeof(buf), "alu r%u, %u", reg, imm);
        return buf;
      case Opcode::AluWide:
        std::snprintf(buf, sizeof(buf), "aluw r%u, %u", reg, imm);
        return buf;
      case Opcode::Load:
        std::snprintf(buf, sizeof(buf), "load r%u, [%u]", reg, imm);
        return buf;
      case Opcode::Store:
        std::snprintf(buf, sizeof(buf), "store r%u, [%u]", reg, imm);
        return buf;
      case Opcode::Prefetch:
        std::snprintf(buf, sizeof(buf), "prefetch site=%u +%u", imm, reg);
        return buf;
      case Opcode::JmpShort:
        std::snprintf(buf, sizeof(buf), "jmp.s %+d", rel);
        return buf;
      case Opcode::JmpNear:
        std::snprintf(buf, sizeof(buf), "jmp %+d", rel);
        return buf;
      case Opcode::JccShort:
        std::snprintf(buf, sizeof(buf), "jcc.s %+d (id=%u bias=%u%s)", rel,
                      branchId, bias, (flags & kJccInvert) ? " inv" : "");
        return buf;
      case Opcode::JccNear:
        std::snprintf(buf, sizeof(buf), "jcc %+d (id=%u bias=%u%s)", rel,
                      branchId, bias, (flags & kJccInvert) ? " inv" : "");
        return buf;
      case Opcode::Call:
        std::snprintf(buf, sizeof(buf), "call %+d", rel);
        return buf;
    }
    return "<bad>";
}

} // namespace propeller::isa
