#include "stale/stale.h"

#include "propeller/addr_map_index.h"

namespace propeller::stale {

StaleWpaResult
runStaleWholeProgramAnalysis(const linker::Executable &target,
                             const linker::Executable &profiled,
                             const profile::Profile &prof,
                             const core::LayoutOptions &opts,
                             unsigned jobs)
{
    StaleWpaResult result;
    core::WpaResult &wpa = result.wpa;

    // The profile must at least belong to the binary it claims to have
    // been collected on; the whole point of this pipeline is that it need
    // not match the *target*.
    wpa.stats.profileMismatch =
        prof.binaryHash != 0 && prof.binaryHash != profiled.identityHash;

    wpa.stats.profileBytes = prof.sizeInBytes();

    profile::AggregationOptions agg_opts;
    agg_opts.threads = jobs;
    profile::AggregatedProfile agg = profile::aggregate(prof, agg_opts);

    // Two indexes: addresses in the profile decode against the *profiled*
    // binary; matching and layout run against the *target* binary.
    core::AddrMapIndex profiled_index(profiled);
    core::AddrMapIndex target_index(target);
    wpa.stats.indexFootprint =
        profiled_index.footprint() + target_index.footprint();

    core::WholeProgramDcfg stale_dcfg =
        buildDcfg(agg, profiled_index, &wpa.stats.mapper, jobs);

    StaleMatchResult match =
        matchStaleProfile(stale_dcfg, profiled_index, target_index);
    result.match = match.stats;
    result.inference = inferStaleCounts(match, target_index);

    wpa.stats.dcfgFootprint = match.dcfg.footprint();

    core::LayoutResult layout =
        computeLayout(match.dcfg, target_index, opts, jobs);
    wpa.ccProf = std::move(layout.ccProf);
    wpa.ldProf = std::move(layout.ldProf);
    wpa.hotFunctions = std::move(layout.hotFunctions);
    wpa.stats.extTsp = layout.extTspStats;
    wpa.stats.hotFunctions = static_cast<uint32_t>(wpa.hotFunctions.size());
    return result;
}

} // namespace propeller::stale
