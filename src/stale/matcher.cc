#include "stale/stale.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "propeller/addr_map_index.h"

namespace propeller::stale {

using core::BlockRef;
using core::DcfgNode;
using core::FunctionDcfg;

namespace {

/** Absolute distance between two block positions. */
uint64_t
dist(size_t a, size_t b)
{
    return a > b ? a - b : b - a;
}

/**
 * Pick the unclaimed candidate position closest to @p desired; ties go to
 * the lower position.  Returns -1 if every candidate is claimed.
 */
int
pickNearest(const std::vector<uint32_t> &candidates,
            const std::vector<char> &claimed, size_t desired)
{
    int best = -1;
    uint64_t best_dist = 0;
    for (uint32_t pos : candidates) {
        if (claimed[pos])
            continue;
        uint64_t d = dist(pos, desired);
        if (best < 0 || d < best_dist) {
            best = static_cast<int>(pos);
            best_dist = d;
        }
    }
    return best;
}

} // namespace

StaleMatchResult
matchStaleProfile(const core::WholeProgramDcfg &profile_dcfg,
                  const core::AddrMapIndex &profiled,
                  const core::AddrMapIndex &target)
{
    StaleMatchResult out;
    StaleMatchStats &stats = out.stats;

    // Remap tables for the call edges below.
    std::vector<int> fn_remap(profile_dcfg.functions.size(), -1);
    std::vector<std::vector<int>> node_remap(profile_dcfg.functions.size());

    for (size_t fi = 0; fi < profile_dcfg.functions.size(); ++fi) {
        const FunctionDcfg &fn = profile_dcfg.functions[fi];
        ++stats.functionsTotal;
        stats.blocksTotal += fn.nodes.size();
        for (const auto &node : fn.nodes)
            stats.weightTotal += node.freq;

        int t_idx = target.findFunction(fn.function);
        if (t_idx < 0) {
            // Function removed (or renamed) in the target build.
            ++stats.functionsDropped;
            stats.blocksDropped += fn.nodes.size();
            stats.edgesDropped += fn.edges.size();
            continue;
        }
        int a_idx = profiled.findFunction(fn.function);

        // ---- Tier 1: whole-function hash match -------------------------
        // The CFG and every instruction stream are unchanged; counts
        // transfer by block id.  Copying the DCFG verbatim keeps the
        // zero-drift pipeline byte-identical to the fresh-profile path.
        uint64_t a_hash = a_idx >= 0 ? profiled.functionHash(a_idx) : 0;
        if (a_hash != 0 && a_hash == target.functionHash(t_idx)) {
            fn_remap[fi] = static_cast<int>(out.dcfg.functions.size());
            node_remap[fi].resize(fn.nodes.size());
            for (size_t ni = 0; ni < fn.nodes.size(); ++ni)
                node_remap[fi][ni] = static_cast<int>(ni);
            out.dcfg.functions.push_back(fn);
            out.needsInference.push_back(0);
            out.functionHashes.push_back({fn.function, a_hash, a_hash});
            ++stats.functionsIdentical;
            stats.blocksExact += fn.nodes.size();
            for (const auto &node : fn.nodes)
                stats.weightMatched += node.freq;
            continue;
        }

        // ---- Block-level matching --------------------------------------
        std::vector<BlockRef> b_blocks = target.blocksOf(t_idx);
        std::vector<BlockRef> a_blocks;
        if (a_idx >= 0)
            a_blocks = profiled.blocksOf(a_idx);

        std::unordered_map<uint32_t, size_t> a_pos;   // bbId -> position
        std::unordered_map<uint32_t, uint64_t> a_hashes;
        for (size_t p = 0; p < a_blocks.size(); ++p) {
            a_pos.emplace(a_blocks[p].bbId, p);
            a_hashes.emplace(a_blocks[p].bbId, a_blocks[p].hash);
        }
        std::unordered_map<uint64_t, std::vector<uint32_t>> by_hash_b;
        for (size_t p = 0; p < b_blocks.size(); ++p) {
            if (b_blocks[p].hash != 0)
                by_hash_b[b_blocks[p].hash].push_back(
                    static_cast<uint32_t>(p));
        }

        std::vector<char> claimed(b_blocks.size(), 0);
        std::vector<int> matched_pos(fn.nodes.size(), -1);

        // ---- Tier 2: exact block-hash match ----------------------------
        // Candidates with several occurrences (duplicated blocks) resolve
        // to the nearest position; positions are address order, which is
        // layout order in the metadata binaries.
        for (size_t ni = 0; ni < fn.nodes.size(); ++ni) {
            const DcfgNode &node = fn.nodes[ni];
            auto hit = a_hashes.find(node.bbId);
            if (hit == a_hashes.end() || hit->second == 0)
                continue;
            auto cands = by_hash_b.find(hit->second);
            if (cands == by_hash_b.end())
                continue;
            size_t pa = 0;
            if (auto it = a_pos.find(node.bbId); it != a_pos.end())
                pa = it->second;
            int pick = pickNearest(cands->second, claimed, pa);
            if (pick >= 0) {
                claimed[pick] = 1;
                matched_pos[ni] = pick;
                ++stats.blocksExact;
            }
        }

        // Anchors: (position in A, position in B) of exact matches.
        std::vector<std::pair<size_t, size_t>> anchors;
        for (size_t ni = 0; ni < fn.nodes.size(); ++ni) {
            if (matched_pos[ni] < 0)
                continue;
            auto it = a_pos.find(fn.nodes[ni].bbId);
            if (it != a_pos.end())
                anchors.emplace_back(it->second,
                                     static_cast<size_t>(matched_pos[ni]));
        }
        std::sort(anchors.begin(), anchors.end());

        // ---- Tier 3: anchor-based nearest matching ---------------------
        // An edited block keeps its place between the unchanged blocks
        // around it: take the nearest anchors below and above the block's
        // old position, map its offset from the lower anchor into the
        // corresponding window of the target, and claim the nearest
        // unclaimed block there.
        for (size_t ni = 0; ni < fn.nodes.size(); ++ni) {
            if (matched_pos[ni] >= 0 || b_blocks.empty())
                continue;
            size_t pa = 0;
            if (auto it = a_pos.find(fn.nodes[ni].bbId); it != a_pos.end())
                pa = it->second;

            size_t lo = 0, hi = b_blocks.size() - 1;
            size_t desired = pa;
            auto above = std::upper_bound(
                anchors.begin(), anchors.end(),
                std::make_pair(pa, std::numeric_limits<size_t>::max()));
            if (above != anchors.begin()) {
                auto below = std::prev(above);
                lo = below->second; // window is exclusive of the anchor
                desired = below->second + (pa - below->first);
            }
            if (above != anchors.end() && above->second > 0)
                hi = above->second - 1;
            if (lo > hi) {
                ++stats.blocksDropped;
                continue;
            }
            desired = std::clamp(desired, lo, hi);

            int best = -1;
            uint64_t best_dist = 0;
            for (size_t p = lo; p <= hi; ++p) {
                if (claimed[p])
                    continue;
                uint64_t d = dist(p, desired);
                if (best < 0 || d < best_dist) {
                    best = static_cast<int>(p);
                    best_dist = d;
                }
            }
            if (best < 0) {
                ++stats.blocksDropped;
                continue;
            }
            claimed[best] = 1;
            matched_pos[ni] = best;
            ++stats.blocksAnchor;
        }

        // ---- Build the function's matched DCFG -------------------------
        FunctionDcfg nf;
        nf.function = fn.function;
        std::vector<int> remap(fn.nodes.size(), -1);
        for (size_t ni = 0; ni < fn.nodes.size(); ++ni) {
            if (matched_pos[ni] < 0)
                continue;
            const BlockRef &b = b_blocks[matched_pos[ni]];
            remap[ni] = static_cast<int>(nf.nodes.size());
            DcfgNode node;
            node.bbId = b.bbId;
            node.size = static_cast<uint32_t>(b.blockEnd - b.blockStart);
            node.freq = fn.nodes[ni].freq;
            node.flags = b.flags;
            nf.nodes.push_back(node);
            stats.weightMatched += node.freq;
        }
        if (nf.nodes.empty()) {
            // Matched the function but none of its profiled blocks: treat
            // the function as lost rather than emit an empty DCFG.
            ++stats.functionsDropped;
            stats.edgesDropped += fn.edges.size();
            continue;
        }
        for (const auto &edge : fn.edges) {
            int a = remap[edge.fromNode];
            int b = remap[edge.toNode];
            if (a < 0 || b < 0) {
                ++stats.edgesDropped;
                continue;
            }
            nf.edges.push_back({static_cast<uint32_t>(a),
                                static_cast<uint32_t>(b), edge.weight,
                                edge.kind});
        }

        // The entry node is the target's entry block; insert it with zero
        // frequency if no profiled block mapped onto it (the layout pass
        // anchors the primary cluster there).
        uint32_t entry_bb = target.entryBlock(t_idx);
        int entry_node = -1;
        for (size_t ni = 0; ni < nf.nodes.size(); ++ni) {
            if (nf.nodes[ni].bbId == entry_bb) {
                entry_node = static_cast<int>(ni);
                break;
            }
        }
        if (entry_node < 0) {
            entry_node = static_cast<int>(nf.nodes.size());
            DcfgNode node;
            node.bbId = entry_bb;
            if (auto b = target.block(t_idx, entry_bb)) {
                node.size =
                    static_cast<uint32_t>(b->blockEnd - b->blockStart);
                node.flags = b->flags;
            }
            nf.nodes.push_back(node);
        }
        nf.entryNode = static_cast<uint32_t>(entry_node);

        fn_remap[fi] = static_cast<int>(out.dcfg.functions.size());
        node_remap[fi] = std::move(remap);
        out.dcfg.functions.push_back(std::move(nf));
        out.needsInference.push_back(1);
        out.functionHashes.push_back(
            {fn.function, a_hash, target.functionHash(t_idx)});
        ++stats.functionsMatched;
    }

    // ---- Call edges -----------------------------------------------------
    for (const auto &ce : profile_dcfg.callEdges) {
        int caller = fn_remap[ce.callerDcfg];
        int callee = fn_remap[ce.calleeDcfg];
        if (caller < 0 || callee < 0)
            continue;
        int caller_node = node_remap[ce.callerDcfg][ce.callerNode];
        if (caller_node < 0)
            continue;
        out.dcfg.callEdges.push_back({static_cast<uint32_t>(caller),
                                      static_cast<uint32_t>(caller_node),
                                      static_cast<uint32_t>(callee),
                                      ce.weight});
    }
    return out;
}

} // namespace propeller::stale
