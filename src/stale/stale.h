#ifndef PROPELLER_STALE_STALE_H
#define PROPELLER_STALE_STALE_H

/**
 * @file
 * Stale-profile tolerance (the warehouse-scale release cycle, paper
 * section 2.2): a profile collected on last week's production binary *A*
 * is applied to this week's build *B*.
 *
 * The pipeline has three stages:
 *
 *  1. **Matching** (matcher.cc): the DCFG built on binary A is mapped
 *     function-by-function onto binary B's BB address map using the
 *     stable fingerprints of codegen/fingerprint.h — exact match on the
 *     function hash (whole CFG unchanged: counts transfer by block id),
 *     then per-block exact hash match, then anchor-based nearest matching
 *     for edited blocks (exact-hash matches act as anchors; an edited
 *     block maps to the nearest unclaimed block at the corresponding
 *     relative position).
 *
 *  2. **Inference** (inference.cc): a flow-propagation pass fills in
 *     counts for blocks binary B added: profile edges whose endpoints are
 *     no longer statically adjacent are rerouted along unprofiled static
 *     paths, and residual flow imbalance at matched blocks is pushed into
 *     unmatched successors.  Flow conservation at matched blocks never
 *     degrades.
 *
 *  3. **Layout**: the completed DCFG feeds the ordinary Ext-TSP layout
 *     pass against binary B's address map.
 *
 * At zero drift (A == B) the matcher reduces to an identity copy and the
 * whole pipeline is byte-identical to the fresh-profile path.
 */

#include <cstdint>
#include <vector>

#include "linker/executable.h"
#include "profile/profile.h"
#include "propeller/propeller.h"

namespace propeller::stale {

/** Match-rate statistics of one matching pass. */
struct StaleMatchStats
{
    uint32_t functionsTotal = 0;     ///< Sampled functions in the profile.
    uint32_t functionsIdentical = 0; ///< Function-hash exact matches.
    uint32_t functionsMatched = 0;   ///< Matched with block-level work.
    uint32_t functionsDropped = 0;   ///< No such function in the target.

    uint64_t blocksTotal = 0;   ///< Sampled blocks seen.
    uint64_t blocksExact = 0;   ///< Matched by exact block hash.
    uint64_t blocksAnchor = 0;  ///< Matched by anchor-based position.
    uint64_t blocksDropped = 0; ///< No plausible target block.

    uint64_t weightTotal = 0;   ///< Sampled events seen.
    uint64_t weightMatched = 0; ///< Events landing on a matched block.

    uint64_t edgesDropped = 0; ///< Edges losing an endpoint.

    double
    blockMatchRate() const
    {
        return blocksTotal == 0
                   ? 1.0
                   : static_cast<double>(blocksExact + blocksAnchor) /
                         static_cast<double>(blocksTotal);
    }

    double
    weightMatchRate() const
    {
        return weightTotal == 0
                   ? 1.0
                   : static_cast<double>(weightMatched) /
                         static_cast<double>(weightTotal);
    }
};

/** Outcome of matching a stale DCFG onto a target binary. */
struct StaleMatchResult
{
    /** The matched DCFG, in the target binary's block id space. */
    core::WholeProgramDcfg dcfg;

    StaleMatchStats stats;

    /**
     * Parallel to dcfg.functions: 1 where the function was *not* a
     * function-hash exact match and count inference should run.  (Keeping
     * inference away from identical functions is what makes the zero-drift
     * path byte-identical to the fresh pipeline.)
     */
    std::vector<uint8_t> needsInference;

    /** Whole-function hashes of one surviving match. */
    struct FunctionHashPair
    {
        std::string function;
        uint64_t profiledHash = 0; ///< Hash in the profiled binary (A).
        uint64_t targetHash = 0;   ///< Hash in the target binary (B).
    };

    /**
     * Parallel to dcfg.functions: the function-hash map of every match
     * that survived (profiledHash == targetHash exactly for tier-1
     * identical functions).  Entries with differing hashes name the
     * drifted-but-matched functions — the set the fleet service primes
     * the layout-cache tier with, since their remapped counts may still
     * reproduce a layout computed against the profiled binary.
     */
    std::vector<FunctionHashPair> functionHashes;
};

/**
 * Map @p profile_dcfg (built against @p profiled, binary A) onto
 * @p target (binary B).  Deterministic; functions and blocks that cannot
 * be matched are dropped and reported in the stats.
 */
StaleMatchResult matchStaleProfile(const core::WholeProgramDcfg &profile_dcfg,
                                   const core::AddrMapIndex &profiled,
                                   const core::AddrMapIndex &target);

/** Statistics of one count-inference pass. */
struct InferenceStats
{
    uint32_t functionsInferred = 0;
    uint64_t nodesAdded = 0;     ///< Blocks given counts by inference.
    uint64_t edgesRerouted = 0;  ///< Profile edges rerouted statically.
    uint64_t edgesAdded = 0;     ///< New edges carrying inferred flow.
    uint64_t weightPushed = 0;   ///< Flow routed through unmatched blocks.
};

/**
 * Fill in counts for unmatched blocks of every function flagged in
 * @p match (in place).  Uses the static successor lists of @p target's
 * v2 address map.  Flow conservation at matched blocks never degrades:
 * |freq - inflow| and |freq - outflow| are non-increasing per node.
 */
InferenceStats inferStaleCounts(StaleMatchResult &match,
                                const core::AddrMapIndex &target);

/** Outputs of the stale whole-program analysis. */
struct StaleWpaResult
{
    core::WpaResult wpa;
    StaleMatchStats match;
    InferenceStats inference;
};

/**
 * Phase 3 for a stale profile: aggregate @p prof (collected on
 * @p profiled), match it onto @p target, infer missing counts and run the
 * ordinary layout pass against @p target's address map.
 *
 * With @p target == @p profiled (same build) the result is byte-identical
 * to runWholeProgramAnalysis().
 */
StaleWpaResult
runStaleWholeProgramAnalysis(const linker::Executable &target,
                             const linker::Executable &profiled,
                             const profile::Profile &prof,
                             const core::LayoutOptions &opts = {},
                             unsigned jobs = 0);

} // namespace propeller::stale

#endif // PROPELLER_STALE_STALE_H
