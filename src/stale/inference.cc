#include "stale/stale.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "propeller/addr_map_index.h"

namespace propeller::stale {

using core::AddrMapIndex;
using core::DcfgEdge;
using core::DcfgNode;
using core::EdgeKind;
using core::FunctionDcfg;

namespace {

/** Longest unprofiled detour the reroute search will take. */
constexpr size_t kMaxRerouteDepth = 4;

/** Per-function working state of the inference pass. */
struct FnState
{
    FunctionDcfg &fn;
    const AddrMapIndex &target;
    uint32_t tIdx;
    InferenceStats &stats;

    std::unordered_map<uint32_t, int> nodeOf; ///< bbId -> node index.
    std::vector<uint64_t> inSum, outSum;
    std::unordered_map<uint64_t, size_t> edgeOf; ///< (from,to) -> index.

    /** Nodes present before inference (profile-carrying). */
    std::vector<char> matched;

    FnState(FunctionDcfg &f, const AddrMapIndex &t, uint32_t idx,
            InferenceStats &s)
        : fn(f), target(t), tIdx(idx), stats(s)
    {
        nodeOf.reserve(fn.nodes.size());
        for (size_t i = 0; i < fn.nodes.size(); ++i)
            nodeOf.emplace(fn.nodes[i].bbId, static_cast<int>(i));
        inSum.assign(fn.nodes.size(), 0);
        outSum.assign(fn.nodes.size(), 0);
        for (size_t e = 0; e < fn.edges.size(); ++e) {
            const DcfgEdge &edge = fn.edges[e];
            edgeOf.emplace(key(edge.fromNode, edge.toNode), e);
            outSum[edge.fromNode] += edge.weight;
            inSum[edge.toNode] += edge.weight;
        }
        matched.assign(fn.nodes.size(), 1);
    }

    static uint64_t
    key(uint32_t from, uint32_t to)
    {
        return (static_cast<uint64_t>(from) << 32) | to;
    }

    /** Node index for @p bb_id, creating an inferred zero-count node. */
    int
    ensureNode(uint32_t bb_id)
    {
        auto it = nodeOf.find(bb_id);
        if (it != nodeOf.end())
            return it->second;
        DcfgNode node;
        node.bbId = bb_id;
        if (auto b = target.block(tIdx, bb_id)) {
            node.size = static_cast<uint32_t>(b->blockEnd - b->blockStart);
            node.flags = b->flags;
        }
        int idx = static_cast<int>(fn.nodes.size());
        fn.nodes.push_back(node);
        inSum.push_back(0);
        outSum.push_back(0);
        matched.push_back(0);
        nodeOf.emplace(bb_id, idx);
        ++stats.nodesAdded;
        return idx;
    }

    /** Add @p weight to edge (from, to), creating it if needed. */
    void
    addFlow(uint32_t from, uint32_t to, uint64_t weight)
    {
        if (weight == 0)
            return;
        auto [it, inserted] = edgeOf.emplace(key(from, to), fn.edges.size());
        if (inserted) {
            fn.edges.push_back({from, to, weight, EdgeKind::Inferred});
            ++stats.edgesAdded;
        } else {
            fn.edges[it->second].weight += weight;
        }
        outSum[from] += weight;
        inSum[to] += weight;
    }

    bool
    isUnprofiled(uint32_t bb_id) const
    {
        auto it = nodeOf.find(bb_id);
        return it == nodeOf.end() || !matched[it->second];
    }

    /**
     * Shortest static path from @p from_bb to @p to_bb whose interior
     * blocks are all unprofiled; empty if none within the depth bound.
     * Deterministic BFS in successor-list order.
     */
    std::vector<uint32_t>
    findDetour(uint32_t from_bb, uint32_t to_bb) const
    {
        std::vector<uint32_t> frontier;
        std::unordered_map<uint32_t, uint32_t> came_from;
        for (uint32_t s : target.successors(tIdx, from_bb)) {
            if (s == to_bb || !isUnprofiled(s) || came_from.count(s))
                continue;
            came_from.emplace(s, from_bb);
            frontier.push_back(s);
        }
        for (size_t depth = 0; depth < kMaxRerouteDepth; ++depth) {
            std::vector<uint32_t> next;
            for (uint32_t u : frontier) {
                for (uint32_t s : target.successors(tIdx, u)) {
                    if (s == to_bb) {
                        // Reconstruct interior path from u back to from_bb.
                        std::vector<uint32_t> path{u};
                        while (path.back() != from_bb) {
                            uint32_t prev = came_from.at(path.back());
                            if (prev == from_bb)
                                break;
                            path.push_back(prev);
                        }
                        std::reverse(path.begin(), path.end());
                        return path;
                    }
                    if (!isUnprofiled(s) || came_from.count(s))
                        continue;
                    came_from.emplace(s, u);
                    next.push_back(s);
                }
            }
            frontier = std::move(next);
            if (frontier.empty())
                break;
        }
        return {};
    }
};

void
inferFunction(FunctionDcfg &fn, const AddrMapIndex &target, uint32_t t_idx,
              InferenceStats &stats)
{
    FnState st(fn, target, t_idx, stats);

    // ---- Stage 1: reroute edges that are no longer statically adjacent.
    // A block split or inserted in the target breaks an observed edge
    // (u, v) into a static chain u -> n1 -> ... -> v whose interior the
    // profile has never seen.  Routing the edge's weight along the chain
    // conserves flow at u and v exactly and gives the new blocks their
    // counts.
    size_t original_edges = fn.edges.size();
    for (size_t e = 0; e < original_edges; ++e) {
        uint32_t from_bb = fn.nodes[fn.edges[e].fromNode].bbId;
        uint32_t to_bb = fn.nodes[fn.edges[e].toNode].bbId;
        const auto &succs = target.successors(t_idx, from_bb);
        if (std::find(succs.begin(), succs.end(), to_bb) != succs.end())
            continue; // Still statically adjacent.
        std::vector<uint32_t> detour = st.findDetour(from_bb, to_bb);
        if (detour.empty())
            continue; // Keep the edge: profile evidence with no static
                      // explanation (e.g. the target edited the branch).
        uint64_t w = fn.edges[e].weight;
        uint32_t from_node = fn.edges[e].fromNode;
        uint32_t to_node = fn.edges[e].toNode;
        // Retire the original edge, then thread its weight along the
        // detour.  Sums at from/to are restored by the added edges.
        st.outSum[from_node] -= w;
        st.inSum[to_node] -= w;
        fn.edges[e].weight = 0;
        uint32_t prev = from_node;
        for (uint32_t bb : detour) {
            int idx = st.ensureNode(bb);
            fn.nodes[idx].freq += w;
            st.addFlow(prev, static_cast<uint32_t>(idx), w);
            prev = static_cast<uint32_t>(idx);
        }
        st.addFlow(prev, to_node, w);
        ++stats.edgesRerouted;
        stats.weightPushed += w;
    }

    // ---- Stage 2: push residual out-flow into unprofiled successors.
    // A matched block whose frequency exceeds its observed out-flow lost
    // an edge to drift; if the static CFG offers unprofiled successors
    // (or profiled ones that are missing the same amount of in-flow),
    // route the residue there.  Newly created nodes are appended and
    // processed by the same loop, so flow propagates down unprofiled
    // chains until it reaches profiled code again.  Every node is
    // processed once, which bounds the pass even on cyclic CFGs.
    for (size_t i = 0; i < fn.nodes.size(); ++i) {
        if (fn.nodes[i].flags & elf::kBbReturns)
            continue; // Out-flow legitimately leaves the function.
        uint64_t freq = fn.nodes[i].freq;
        if (freq <= st.outSum[i])
            continue;
        uint64_t deficit = freq - st.outSum[i];
        const auto &succs = target.successors(t_idx, fn.nodes[i].bbId);
        if (succs.empty())
            continue;

        // First satisfy profiled successors that are short of in-flow —
        // bounded by their own deficit, so conservation at them improves.
        for (uint32_t s : succs) {
            if (deficit == 0)
                break;
            auto it = st.nodeOf.find(s);
            if (it == st.nodeOf.end() || !st.matched[it->second])
                continue;
            uint64_t their_freq = fn.nodes[it->second].freq;
            uint64_t their_in = st.inSum[it->second];
            if (their_freq <= their_in)
                continue;
            uint64_t grant = std::min(deficit, their_freq - their_in);
            st.addFlow(static_cast<uint32_t>(i),
                       static_cast<uint32_t>(it->second), grant);
            deficit -= grant;
            stats.weightPushed += grant;
        }
        if (deficit == 0)
            continue;

        // Split the remainder across unprofiled successors (the drift
        // added them; we cannot tell which one absorbed the flow).
        std::vector<uint32_t> open;
        for (uint32_t s : succs) {
            if (st.isUnprofiled(s))
                open.push_back(s);
        }
        if (open.empty())
            continue;
        uint64_t share = deficit / open.size();
        uint64_t rem = deficit % open.size();
        for (size_t k = 0; k < open.size(); ++k) {
            uint64_t grant = share + (k == 0 ? rem : 0);
            if (grant == 0)
                continue;
            int idx = st.ensureNode(open[k]);
            fn.nodes[idx].freq += grant;
            st.addFlow(static_cast<uint32_t>(i),
                       static_cast<uint32_t>(idx), grant);
            stats.weightPushed += grant;
        }
    }

    // Compact the edges retired by stage 1.
    fn.edges.erase(std::remove_if(fn.edges.begin(), fn.edges.end(),
                                  [](const DcfgEdge &e) {
                                      return e.weight == 0;
                                  }),
                   fn.edges.end());
}

} // namespace

InferenceStats
inferStaleCounts(StaleMatchResult &match, const AddrMapIndex &target)
{
    InferenceStats stats;
    for (size_t fi = 0; fi < match.dcfg.functions.size(); ++fi) {
        if (!match.needsInference[fi])
            continue;
        FunctionDcfg &fn = match.dcfg.functions[fi];
        int t_idx = target.findFunction(fn.function);
        assert(t_idx >= 0 && "matched function missing from target");
        inferFunction(fn, target, static_cast<uint32_t>(t_idx), stats);
        ++stats.functionsInferred;
    }
    return stats;
}

} // namespace propeller::stale
