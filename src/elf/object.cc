#include "elf/object.h"

#include "support/hash.h"

namespace propeller::elf {

uint64_t
Section::size() const
{
    if (type != SectionType::Text)
        return bytes.size();
    uint64_t n = bytes.size();
    for (const auto &piece : pieces) {
        n += piece.bytes.size();
        if (piece.site)
            n += isa::Instruction::sizeOf(piece.site->op);
    }
    return n;
}

uint32_t
Section::relocationCount() const
{
    uint32_t n = 0;
    for (const auto &piece : pieces) {
        if (piece.site)
            ++n;
    }
    return n;
}

int
ObjectFile::findSection(const std::string &name) const
{
    for (size_t i = 0; i < sections.size(); ++i) {
        if (sections[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

ObjectFile::SizeBreakdown &
ObjectFile::SizeBreakdown::operator+=(const SizeBreakdown &rhs)
{
    text += rhs.text;
    ehFrame += rhs.ehFrame;
    bbAddrMap += rhs.bbAddrMap;
    relocs += rhs.relocs;
    debug += rhs.debug;
    other += rhs.other;
    return *this;
}

ObjectFile::SizeBreakdown
ObjectFile::sizeBreakdown() const
{
    SizeBreakdown b;
    for (const auto &sec : sections) {
        switch (sec.type) {
          case SectionType::Text:
            b.text += sec.size();
            b.relocs += sec.relocationCount() * kRelaEntrySize;
            break;
          case SectionType::EhFrame:
            b.ehFrame += sec.size();
            break;
          case SectionType::BbAddrMap:
            b.bbAddrMap += sec.size();
            break;
          case SectionType::Debug:
            b.debug += sec.size();
            break;
          case SectionType::RoData:
          case SectionType::Other:
            b.other += sec.size();
            break;
        }
    }
    b.relocs += debugRelocs * kRelaEntrySize;
    // Frame descriptors not yet flattened into an .eh_frame section still
    // count toward the frame bucket.
    if (b.ehFrame == 0) {
        for (const auto &fde : frames)
            b.ehFrame += fde.byteSize();
    }
    return b;
}

uint64_t
ObjectFile::sizeInBytes() const
{
    // Header + section headers + symbol table + contents; mirrors the
    // serialized form without materializing it.
    uint64_t n = 64;
    SizeBreakdown b = sizeBreakdown();
    n += b.total();
    n += sections.size() * 64; // Section headers.
    n += symbols.size() * 24;  // Symbol table entries.
    for (const auto &sym : symbols)
        n += sym.name.size() + 1; // String table.
    return n;
}

uint64_t
ObjectFile::contentHash() const
{
    return fnv1a(serialize());
}

} // namespace propeller::elf
