#include "elf/object.h"
#include "support/check.h"
#include "support/leb128.h"
#include "support/status.h"

/**
 * @file
 * Binary serialization of object files.
 *
 * The distributed build system (src/build) stores artifacts by content in
 * its cache; serializing object files for real keeps the cache honest (hits
 * require byte-identical artifacts) and gives Figure 6 exact sizes.
 */

namespace propeller::elf {

namespace {

constexpr uint32_t kMagic = 0x0b1ec7f1;

void
putString(const std::string &s, std::vector<uint8_t> &out)
{
    encodeUleb128(s.size(), out);
    out.insert(out.end(), s.begin(), s.end());
}

void
putBytes(const std::vector<uint8_t> &b, std::vector<uint8_t> &out)
{
    encodeUleb128(b.size(), out);
    out.insert(out.end(), b.begin(), b.end());
}

void
putU64(uint64_t v, std::vector<uint8_t> &out)
{
    encodeUleb128(v, out);
}

/**
 * Streaming reader over a byte vector.
 *
 * Malformed input latches an error instead of asserting; once failed,
 * every accessor returns a benign default so the decode loop can bail at
 * the next checkpoint without undefined behavior.
 */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &data) : data_(data) {}

    uint64_t
    u64()
    {
        if (failed())
            return 0;
        auto v = decodeUleb128(data_, pos_);
        if (!v) {
            fail("truncated object file");
            return 0;
        }
        return *v;
    }

    /** u64 bounded by the payload size (guards reserve() calls). */
    uint64_t
    count(const char *what)
    {
        uint64_t n = u64();
        if (!failed() && n > data_.size()) {
            fail(what);
            return 0;
        }
        return n;
    }

    std::string
    str()
    {
        uint64_t len = u64();
        if (failed() || pos_ + len > data_.size()) {
            fail("truncated string");
            return {};
        }
        std::string s(data_.begin() + pos_, data_.begin() + pos_ + len);
        pos_ += len;
        return s;
    }

    std::vector<uint8_t>
    bytes()
    {
        uint64_t len = u64();
        if (failed() || pos_ + len > data_.size()) {
            fail("truncated byte run");
            return {};
        }
        std::vector<uint8_t> b(data_.begin() + pos_,
                               data_.begin() + pos_ + len);
        pos_ += len;
        return b;
    }

    uint8_t
    u8()
    {
        if (failed())
            return 0;
        if (pos_ >= data_.size()) {
            fail("truncated byte");
            return 0;
        }
        return data_[pos_++];
    }

    void
    fail(const std::string &why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = why;
        }
    }

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }
    bool done() const { return failed_ || pos_ == data_.size(); }

  private:
    const std::vector<uint8_t> &data_;
    size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
};

} // namespace

std::vector<uint8_t>
ObjectFile::serialize() const
{
    std::vector<uint8_t> out;
    putU64(kMagic, out);
    putString(name, out);

    putU64(sections.size(), out);
    for (const auto &sec : sections) {
        putString(sec.name, out);
        out.push_back(static_cast<uint8_t>(sec.type));
        putU64(sec.alignment, out);
        out.push_back(sec.isHandAsm ? 1 : 0);
        putBytes(sec.bytes, out);
        putU64(sec.pieces.size(), out);
        for (const auto &piece : sec.pieces) {
            out.push_back(piece.block ? 1 : 0);
            if (piece.block) {
                putU64(piece.block->bbId, out);
                out.push_back(piece.block->flags);
            }
            putBytes(piece.bytes, out);
            out.push_back(piece.site ? 1 : 0);
            if (piece.site) {
                const BranchSite &bs = *piece.site;
                out.push_back(static_cast<uint8_t>(bs.op));
                out.push_back(bs.flags);
                out.push_back(bs.bias);
                putU64(bs.branchId, out);
                putString(bs.targetSymbol, out);
                putU64(bs.targetBb, out);
                out.push_back(bs.isFallThrough ? 1 : 0);
            }
        }
    }

    putU64(symbols.size(), out);
    for (const auto &sym : symbols) {
        putString(sym.name, out);
        putU64(sym.sectionIndex, out);
        out.push_back(static_cast<uint8_t>(sym.kind));
        putString(sym.parentFunction, out);
    }

    putBytes(encodeAddrMaps(addrMaps), out);

    putU64(frames.size(), out);
    for (const auto &fde : frames) {
        putString(fde.sectionSymbol, out);
        putU64(fde.codeLength, out);
        out.push_back(fde.savedRegs);
    }

    putU64(integrityCheckedFunctions.size(), out);
    for (const auto &fn : integrityCheckedFunctions)
        putString(fn, out);

    putU64(debugRelocs, out);
    return out;
}

support::StatusOr<ObjectFile>
ObjectFile::deserializeChecked(const std::vector<uint8_t> &data)
{
    using support::ErrorCode;
    using support::makeError;

    Reader r(data);
    uint64_t magic = r.u64();
    if (r.failed())
        return makeError(ErrorCode::kTruncated, r.error());
    if (magic != kMagic)
        return makeError(ErrorCode::kMalformed, "bad object file magic");

    ObjectFile obj;
    obj.name = r.str();

    uint64_t n_sections = r.count("oversized section count");
    obj.sections.reserve(n_sections);
    for (uint64_t i = 0; i < n_sections && !r.failed(); ++i) {
        Section sec;
        sec.name = r.str();
        uint8_t type = r.u8();
        if (type > static_cast<uint8_t>(SectionType::Other)) {
            r.fail("invalid section type " + std::to_string(type));
            break;
        }
        sec.type = static_cast<SectionType>(type);
        sec.alignment = static_cast<uint32_t>(r.u64());
        sec.isHandAsm = r.u8() != 0;
        sec.bytes = r.bytes();
        uint64_t n_pieces = r.count("oversized piece count");
        sec.pieces.reserve(n_pieces);
        for (uint64_t p = 0; p < n_pieces && !r.failed(); ++p) {
            TextPiece piece;
            if (r.u8()) {
                BlockMark mark;
                mark.bbId = static_cast<uint32_t>(r.u64());
                mark.flags = r.u8();
                piece.block = mark;
            }
            piece.bytes = r.bytes();
            if (r.u8()) {
                BranchSite bs;
                uint8_t op = r.u8();
                if (!r.failed() && !isa::isValidOpcode(op)) {
                    r.fail("invalid branch-site opcode " +
                           std::to_string(op));
                    break;
                }
                bs.op = static_cast<isa::Opcode>(op);
                bs.flags = r.u8();
                bs.bias = r.u8();
                bs.branchId = static_cast<uint32_t>(r.u64());
                bs.targetSymbol = r.str();
                bs.targetBb = static_cast<uint32_t>(r.u64());
                bs.isFallThrough = r.u8() != 0;
                piece.site = std::move(bs);
            }
            sec.pieces.push_back(std::move(piece));
        }
        obj.sections.push_back(std::move(sec));
    }

    uint64_t n_symbols = r.count("oversized symbol count");
    obj.symbols.reserve(n_symbols);
    for (uint64_t i = 0; i < n_symbols && !r.failed(); ++i) {
        Symbol sym;
        sym.name = r.str();
        sym.sectionIndex = static_cast<uint32_t>(r.u64());
        uint8_t kind = r.u8();
        if (!r.failed() && kind > static_cast<uint8_t>(SymbolKind::Cluster)) {
            r.fail("invalid symbol kind " + std::to_string(kind));
            break;
        }
        sym.kind = static_cast<SymbolKind>(kind);
        sym.parentFunction = r.str();
        obj.symbols.push_back(std::move(sym));
    }

    if (!r.failed()) {
        auto maps = decodeAddrMapsChecked(r.bytes());
        if (!maps.ok()) {
            support::Status s = maps.status();
            return std::move(s).withContext("object " + obj.name +
                                            ": .bb_addr_map");
        }
        obj.addrMaps = std::move(maps).value();
    }

    uint64_t n_frames = r.count("oversized frame count");
    obj.frames.reserve(n_frames);
    for (uint64_t i = 0; i < n_frames && !r.failed(); ++i) {
        FrameDescriptor fde;
        fde.sectionSymbol = r.str();
        fde.codeLength = static_cast<uint32_t>(r.u64());
        fde.savedRegs = r.u8();
        obj.frames.push_back(std::move(fde));
    }

    uint64_t n_checks = r.count("oversized integrity-check count");
    for (uint64_t i = 0; i < n_checks && !r.failed(); ++i)
        obj.integrityCheckedFunctions.push_back(r.str());

    obj.debugRelocs = static_cast<uint32_t>(r.u64());
    if (r.failed())
        return makeError(ErrorCode::kMalformed, r.error())
            .withContext("object " + obj.name);
    if (!r.done())
        return makeError(ErrorCode::kMalformed,
                         "trailing bytes in object file")
            .withContext("object " + obj.name);
    return obj;
}

ObjectFile
ObjectFile::deserialize(const std::vector<uint8_t> &data)
{
    auto obj = deserializeChecked(data);
    PROPELLER_CHECK(obj.ok(), "bad object file");
    return std::move(obj).value();
}

} // namespace propeller::elf
