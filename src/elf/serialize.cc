#include <cassert>

#include "elf/object.h"
#include "support/leb128.h"

/**
 * @file
 * Binary serialization of object files.
 *
 * The distributed build system (src/build) stores artifacts by content in
 * its cache; serializing object files for real keeps the cache honest (hits
 * require byte-identical artifacts) and gives Figure 6 exact sizes.
 */

namespace propeller::elf {

namespace {

constexpr uint32_t kMagic = 0x0b1ec7f1;

void
putString(const std::string &s, std::vector<uint8_t> &out)
{
    encodeUleb128(s.size(), out);
    out.insert(out.end(), s.begin(), s.end());
}

void
putBytes(const std::vector<uint8_t> &b, std::vector<uint8_t> &out)
{
    encodeUleb128(b.size(), out);
    out.insert(out.end(), b.begin(), b.end());
}

void
putU64(uint64_t v, std::vector<uint8_t> &out)
{
    encodeUleb128(v, out);
}

/** Streaming reader over a byte vector; asserts on malformed input. */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &data) : data_(data) {}

    uint64_t
    u64()
    {
        auto v = decodeUleb128(data_, pos_);
        assert(v && "truncated object file");
        return *v;
    }

    std::string
    str()
    {
        uint64_t len = u64();
        assert(pos_ + len <= data_.size() && "truncated string");
        std::string s(data_.begin() + pos_, data_.begin() + pos_ + len);
        pos_ += len;
        return s;
    }

    std::vector<uint8_t>
    bytes()
    {
        uint64_t len = u64();
        assert(pos_ + len <= data_.size() && "truncated byte run");
        std::vector<uint8_t> b(data_.begin() + pos_,
                               data_.begin() + pos_ + len);
        pos_ += len;
        return b;
    }

    uint8_t
    u8()
    {
        assert(pos_ < data_.size());
        return data_[pos_++];
    }

    bool done() const { return pos_ == data_.size(); }

  private:
    const std::vector<uint8_t> &data_;
    size_t pos_ = 0;
};

} // namespace

std::vector<uint8_t>
ObjectFile::serialize() const
{
    std::vector<uint8_t> out;
    putU64(kMagic, out);
    putString(name, out);

    putU64(sections.size(), out);
    for (const auto &sec : sections) {
        putString(sec.name, out);
        out.push_back(static_cast<uint8_t>(sec.type));
        putU64(sec.alignment, out);
        out.push_back(sec.isHandAsm ? 1 : 0);
        putBytes(sec.bytes, out);
        putU64(sec.pieces.size(), out);
        for (const auto &piece : sec.pieces) {
            out.push_back(piece.block ? 1 : 0);
            if (piece.block) {
                putU64(piece.block->bbId, out);
                out.push_back(piece.block->flags);
            }
            putBytes(piece.bytes, out);
            out.push_back(piece.site ? 1 : 0);
            if (piece.site) {
                const BranchSite &bs = *piece.site;
                out.push_back(static_cast<uint8_t>(bs.op));
                out.push_back(bs.flags);
                out.push_back(bs.bias);
                putU64(bs.branchId, out);
                putString(bs.targetSymbol, out);
                putU64(bs.targetBb, out);
                out.push_back(bs.isFallThrough ? 1 : 0);
            }
        }
    }

    putU64(symbols.size(), out);
    for (const auto &sym : symbols) {
        putString(sym.name, out);
        putU64(sym.sectionIndex, out);
        out.push_back(static_cast<uint8_t>(sym.kind));
        putString(sym.parentFunction, out);
    }

    putBytes(encodeAddrMaps(addrMaps), out);

    putU64(frames.size(), out);
    for (const auto &fde : frames) {
        putString(fde.sectionSymbol, out);
        putU64(fde.codeLength, out);
        out.push_back(fde.savedRegs);
    }

    putU64(integrityCheckedFunctions.size(), out);
    for (const auto &fn : integrityCheckedFunctions)
        putString(fn, out);

    putU64(debugRelocs, out);
    return out;
}

ObjectFile
ObjectFile::deserialize(const std::vector<uint8_t> &data)
{
    Reader r(data);
    uint64_t magic = r.u64();
    assert(magic == kMagic && "bad object file magic");
    (void)magic;

    ObjectFile obj;
    obj.name = r.str();

    uint64_t n_sections = r.u64();
    obj.sections.reserve(n_sections);
    for (uint64_t i = 0; i < n_sections; ++i) {
        Section sec;
        sec.name = r.str();
        sec.type = static_cast<SectionType>(r.u8());
        sec.alignment = static_cast<uint32_t>(r.u64());
        sec.isHandAsm = r.u8() != 0;
        sec.bytes = r.bytes();
        uint64_t n_pieces = r.u64();
        sec.pieces.reserve(n_pieces);
        for (uint64_t p = 0; p < n_pieces; ++p) {
            TextPiece piece;
            if (r.u8()) {
                BlockMark mark;
                mark.bbId = static_cast<uint32_t>(r.u64());
                mark.flags = r.u8();
                piece.block = mark;
            }
            piece.bytes = r.bytes();
            if (r.u8()) {
                BranchSite bs;
                bs.op = static_cast<isa::Opcode>(r.u8());
                bs.flags = r.u8();
                bs.bias = r.u8();
                bs.branchId = static_cast<uint32_t>(r.u64());
                bs.targetSymbol = r.str();
                bs.targetBb = static_cast<uint32_t>(r.u64());
                bs.isFallThrough = r.u8() != 0;
                piece.site = std::move(bs);
            }
            sec.pieces.push_back(std::move(piece));
        }
        obj.sections.push_back(std::move(sec));
    }

    uint64_t n_symbols = r.u64();
    obj.symbols.reserve(n_symbols);
    for (uint64_t i = 0; i < n_symbols; ++i) {
        Symbol sym;
        sym.name = r.str();
        sym.sectionIndex = static_cast<uint32_t>(r.u64());
        sym.kind = static_cast<SymbolKind>(r.u8());
        sym.parentFunction = r.str();
        obj.symbols.push_back(std::move(sym));
    }

    bool ok = true;
    obj.addrMaps = decodeAddrMaps(r.bytes(), &ok);
    assert(ok && "bad bb_addr_map payload");
    (void)ok;

    uint64_t n_frames = r.u64();
    obj.frames.reserve(n_frames);
    for (uint64_t i = 0; i < n_frames; ++i) {
        FrameDescriptor fde;
        fde.sectionSymbol = r.str();
        fde.codeLength = static_cast<uint32_t>(r.u64());
        fde.savedRegs = r.u8();
        obj.frames.push_back(std::move(fde));
    }

    uint64_t n_checks = r.u64();
    for (uint64_t i = 0; i < n_checks; ++i)
        obj.integrityCheckedFunctions.push_back(r.str());

    obj.debugRelocs = static_cast<uint32_t>(r.u64());
    assert(r.done() && "trailing bytes in object file");
    return obj;
}

} // namespace propeller::elf
