#include "elf/bb_addr_map.h"

#include <cassert>

#include "support/hash.h"
#include "support/leb128.h"

namespace propeller::elf {

using support::ErrorCode;
using support::makeError;
using support::StatusOr;

size_t
FunctionAddrMap::blockCount() const
{
    size_t n = 0;
    for (const auto &range : ranges)
        n += range.blocks.size();
    return n;
}

namespace {

/** First byte of a v2 blob.  A non-empty v1 blob can never start with
 *  0x00: a leading zero is a zero function count, which is only valid as
 *  the entire (one-byte) payload. */
constexpr uint8_t kV2Escape = 0x00;

void
encodeString(const std::string &s, std::vector<uint8_t> &out)
{
    encodeUleb128(s.size(), out);
    out.insert(out.end(), s.begin(), s.end());
}

bool
decodeString(const std::vector<uint8_t> &data, size_t &pos, std::string &out)
{
    auto len = decodeUleb128(data, pos);
    if (!len || pos + *len > data.size())
        return false;
    out.assign(data.begin() + pos, data.begin() + pos + *len);
    pos += *len;
    return true;
}

/** Append @p v as 8 little-endian bytes. */
void
put64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/** Read 8 little-endian bytes at @p p. */
uint64_t
get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

std::vector<uint8_t>
encodeAddrMaps(const std::vector<FunctionAddrMap> &maps,
               AddrMapVersion version)
{
    // Compact encoding in the spirit of SHT_LLVM_BB_ADDR_MAP: blocks in a
    // range are contiguous, so only the first offset plus per-block sizes
    // are stored; flags are packed with the id.
    std::vector<uint8_t> out;
    uint64_t features = 0;
    if (version == AddrMapVersion::V2) {
        features = kAddrMapFeatureHashes | kAddrMapFeatureSuccessors;
        out.push_back(kV2Escape);
        encodeUleb128(static_cast<uint64_t>(AddrMapVersion::V2), out);
        encodeUleb128(features, out);
    }
    encodeUleb128(maps.size(), out);
    for (const auto &map : maps) {
        encodeString(map.functionName, out);
        if (features & kAddrMapFeatureHashes)
            encodeUleb128(map.functionHash, out);
        encodeUleb128(map.ranges.size(), out);
        for (const auto &range : map.ranges) {
            encodeString(range.sectionSymbol, out);
            encodeUleb128(range.blocks.size(), out);
            uint64_t expected_offset =
                range.blocks.empty() ? 0 : range.blocks.front().offset;
            encodeUleb128(expected_offset, out);
            for (const auto &bb : range.blocks) {
                assert(bb.offset == expected_offset &&
                       "range blocks must be contiguous");
                encodeUleb128((static_cast<uint64_t>(bb.bbId) << 3) |
                                  (bb.flags & 0x7),
                              out);
                encodeUleb128(bb.size, out);
                if (features & kAddrMapFeatureHashes)
                    encodeUleb128(bb.hash, out);
                if (features & kAddrMapFeatureSuccessors) {
                    encodeUleb128(bb.succs.size(), out);
                    for (uint32_t succ : bb.succs)
                        encodeUleb128(succ, out);
                }
                expected_offset += bb.size;
            }
        }
    }
    // v2 blobs end with a content checksum; v1 stays checksum-free so
    // legacy blobs round-trip byte-identically.
    if (version == AddrMapVersion::V2)
        put64(out, fnv1a(out.data(), out.size()));
    return out;
}

StatusOr<std::vector<FunctionAddrMap>>
decodeAddrMapsChecked(const std::vector<uint8_t> &data)
{
    size_t pos = 0;
    size_t payload_end = data.size();
    uint64_t features = 0;
    if (data.size() > 1 && data[0] == kV2Escape) {
        // v2 blobs end with a checksum; verify it before trusting any
        // field (a bit flip inside a ULEB field decodes "successfully").
        constexpr size_t kV2MinSize = 4 + 8;
        if (data.size() < kV2MinSize)
            return makeError(ErrorCode::kTruncated,
                             "v2 blob shorter than header + checksum");
        payload_end = data.size() - 8;
        uint64_t want = get64(data.data() + payload_end);
        uint64_t got = fnv1a(data.data(), payload_end);
        if (want != got)
            return makeError(ErrorCode::kChecksumMismatch,
                             ".bb_addr_map content checksum does not "
                             "verify");
        pos = 1;
        auto version = decodeUleb128(data, pos);
        if (!version)
            return makeError(ErrorCode::kTruncated, "truncated version");
        if (*version != static_cast<uint64_t>(AddrMapVersion::V2))
            return makeError(ErrorCode::kUnknownVersion,
                             "wire version " + std::to_string(*version));
        auto feats = decodeUleb128(data, pos);
        if (!feats)
            return makeError(ErrorCode::kTruncated,
                             "truncated feature bits");
        if ((*feats & ~kAddrMapKnownFeatures) != 0)
            return makeError(ErrorCode::kUnsupportedFeature,
                             "unknown feature bits 0x" +
                                 std::to_string(*feats &
                                                ~kAddrMapKnownFeatures));
        features = *feats;
    }

    // Decode ULEB fields strictly inside the payload: a field that runs
    // into the trailing checksum is truncation, not data.
    auto uleb = [&](const char *what) -> StatusOr<uint64_t> {
        auto v = decodeUleb128(data, pos);
        if (!v || pos > payload_end)
            return makeError(ErrorCode::kTruncated,
                             std::string("truncated ") + what);
        return *v;
    };
    auto str = [&](const char *what, std::string &out) -> support::Status {
        size_t before = pos;
        if (!decodeString(data, pos, out) || pos > payload_end) {
            pos = before;
            return makeError(ErrorCode::kTruncated,
                             std::string("truncated ") + what);
        }
        return support::okStatus();
    };

    PROPELLER_ASSIGN_OR_RETURN(uint64_t n_funcs, uleb("function count"));
    // Sanity bound: every function entry needs at least 4 bytes, so any
    // larger count is corrupt input (guards reserve() on fuzzed bytes).
    if (n_funcs > data.size())
        return makeError(ErrorCode::kMalformed,
                         "function count " + std::to_string(n_funcs) +
                             " exceeds payload size");

    std::vector<FunctionAddrMap> maps;
    maps.reserve(n_funcs);
    for (uint64_t f = 0; f < n_funcs; ++f) {
        FunctionAddrMap map;
        auto ctx = [&](support::Status s) {
            return std::move(s).withContext(
                map.functionName.empty()
                    ? "function #" + std::to_string(f)
                    : "function " + map.functionName);
        };
        if (auto s = str("function name", map.functionName); !s.ok())
            return ctx(std::move(s));
        if (features & kAddrMapFeatureHashes) {
            auto fn_hash = uleb("function hash");
            if (!fn_hash.ok())
                return ctx(fn_hash.status());
            map.functionHash = *fn_hash;
        }
        auto n_ranges = uleb("range count");
        if (!n_ranges.ok())
            return ctx(n_ranges.status());
        if (*n_ranges > data.size())
            return ctx(makeError(ErrorCode::kMalformed,
                                 "range count " +
                                     std::to_string(*n_ranges) +
                                     " exceeds payload size"));
        for (uint64_t r = 0; r < *n_ranges; ++r) {
            BbRange range;
            if (auto s = str("section symbol", range.sectionSymbol);
                !s.ok())
                return ctx(std::move(s));
            auto n_blocks = uleb("block count");
            auto offset = uleb("range offset");
            if (!n_blocks.ok())
                return ctx(n_blocks.status());
            if (!offset.ok())
                return ctx(offset.status());
            if (*n_blocks > data.size())
                return ctx(makeError(ErrorCode::kMalformed,
                                     "block count " +
                                         std::to_string(*n_blocks) +
                                         " exceeds payload size"));
            uint64_t cursor = *offset;
            for (uint64_t b = 0; b < *n_blocks; ++b) {
                BbEntry bb;
                auto id_flags = uleb("block id");
                auto size = uleb("block size");
                if (!id_flags.ok())
                    return ctx(id_flags.status());
                if (!size.ok())
                    return ctx(size.status());
                bb.bbId = static_cast<uint32_t>(*id_flags >> 3);
                bb.flags = static_cast<uint8_t>(*id_flags & 0x7);
                bb.offset = static_cast<uint32_t>(cursor);
                bb.size = static_cast<uint32_t>(*size);
                cursor += *size;
                if (features & kAddrMapFeatureHashes) {
                    auto hash = uleb("block hash");
                    if (!hash.ok())
                        return ctx(hash.status());
                    bb.hash = *hash;
                }
                if (features & kAddrMapFeatureSuccessors) {
                    auto n_succs = uleb("successor count");
                    if (!n_succs.ok())
                        return ctx(n_succs.status());
                    if (*n_succs > data.size())
                        return ctx(makeError(
                            ErrorCode::kMalformed,
                            "successor count " +
                                std::to_string(*n_succs) +
                                " exceeds payload size"));
                    bb.succs.reserve(*n_succs);
                    for (uint64_t s = 0; s < *n_succs; ++s) {
                        auto succ = uleb("successor id");
                        if (!succ.ok())
                            return ctx(succ.status());
                        bb.succs.push_back(
                            static_cast<uint32_t>(*succ));
                    }
                }
                range.blocks.push_back(std::move(bb));
            }
            map.ranges.push_back(std::move(range));
        }
        maps.push_back(std::move(map));
    }
    if (pos != payload_end)
        return makeError(ErrorCode::kMalformed,
                         "trailing bytes after last function entry");
    return maps;
}

std::vector<FunctionAddrMap>
decodeAddrMaps(const std::vector<uint8_t> &data, bool *ok)
{
    auto maps = decodeAddrMapsChecked(data);
    if (!maps.ok()) {
        if (ok)
            *ok = false;
        return {};
    }
    if (ok)
        *ok = true;
    return std::move(maps).value();
}

} // namespace propeller::elf
