#include "elf/bb_addr_map.h"

#include <cassert>

#include "support/leb128.h"

namespace propeller::elf {

size_t
FunctionAddrMap::blockCount() const
{
    size_t n = 0;
    for (const auto &range : ranges)
        n += range.blocks.size();
    return n;
}

namespace {

/** First byte of a v2 blob.  A non-empty v1 blob can never start with
 *  0x00: a leading zero is a zero function count, which is only valid as
 *  the entire (one-byte) payload. */
constexpr uint8_t kV2Escape = 0x00;

void
encodeString(const std::string &s, std::vector<uint8_t> &out)
{
    encodeUleb128(s.size(), out);
    out.insert(out.end(), s.begin(), s.end());
}

bool
decodeString(const std::vector<uint8_t> &data, size_t &pos, std::string &out)
{
    auto len = decodeUleb128(data, pos);
    if (!len || pos + *len > data.size())
        return false;
    out.assign(data.begin() + pos, data.begin() + pos + *len);
    pos += *len;
    return true;
}

} // namespace

std::vector<uint8_t>
encodeAddrMaps(const std::vector<FunctionAddrMap> &maps,
               AddrMapVersion version)
{
    // Compact encoding in the spirit of SHT_LLVM_BB_ADDR_MAP: blocks in a
    // range are contiguous, so only the first offset plus per-block sizes
    // are stored; flags are packed with the id.
    std::vector<uint8_t> out;
    uint64_t features = 0;
    if (version == AddrMapVersion::V2) {
        features = kAddrMapFeatureHashes | kAddrMapFeatureSuccessors;
        out.push_back(kV2Escape);
        encodeUleb128(static_cast<uint64_t>(AddrMapVersion::V2), out);
        encodeUleb128(features, out);
    }
    encodeUleb128(maps.size(), out);
    for (const auto &map : maps) {
        encodeString(map.functionName, out);
        if (features & kAddrMapFeatureHashes)
            encodeUleb128(map.functionHash, out);
        encodeUleb128(map.ranges.size(), out);
        for (const auto &range : map.ranges) {
            encodeString(range.sectionSymbol, out);
            encodeUleb128(range.blocks.size(), out);
            uint64_t expected_offset =
                range.blocks.empty() ? 0 : range.blocks.front().offset;
            encodeUleb128(expected_offset, out);
            for (const auto &bb : range.blocks) {
                assert(bb.offset == expected_offset &&
                       "range blocks must be contiguous");
                encodeUleb128((static_cast<uint64_t>(bb.bbId) << 3) |
                                  (bb.flags & 0x7),
                              out);
                encodeUleb128(bb.size, out);
                if (features & kAddrMapFeatureHashes)
                    encodeUleb128(bb.hash, out);
                if (features & kAddrMapFeatureSuccessors) {
                    encodeUleb128(bb.succs.size(), out);
                    for (uint32_t succ : bb.succs)
                        encodeUleb128(succ, out);
                }
                expected_offset += bb.size;
            }
        }
    }
    return out;
}

std::vector<FunctionAddrMap>
decodeAddrMaps(const std::vector<uint8_t> &data, bool *ok)
{
    auto fail = [&]() {
        if (ok)
            *ok = false;
        return std::vector<FunctionAddrMap>{};
    };
    if (ok)
        *ok = true;

    size_t pos = 0;
    uint64_t features = 0;
    if (data.size() > 1 && data[0] == kV2Escape) {
        pos = 1;
        auto version = decodeUleb128(data, pos);
        if (!version ||
            *version != static_cast<uint64_t>(AddrMapVersion::V2))
            return fail();
        auto feats = decodeUleb128(data, pos);
        if (!feats || (*feats & ~kAddrMapKnownFeatures) != 0)
            return fail();
        features = *feats;
    }

    auto n_funcs = decodeUleb128(data, pos);
    // Sanity bound: every function entry needs at least 4 bytes, so any
    // larger count is corrupt input (guards reserve() on fuzzed bytes).
    if (!n_funcs || *n_funcs > data.size())
        return fail();

    std::vector<FunctionAddrMap> maps;
    maps.reserve(*n_funcs);
    for (uint64_t f = 0; f < *n_funcs; ++f) {
        FunctionAddrMap map;
        if (!decodeString(data, pos, map.functionName))
            return fail();
        if (features & kAddrMapFeatureHashes) {
            auto fn_hash = decodeUleb128(data, pos);
            if (!fn_hash)
                return fail();
            map.functionHash = *fn_hash;
        }
        auto n_ranges = decodeUleb128(data, pos);
        if (!n_ranges || *n_ranges > data.size())
            return fail();
        for (uint64_t r = 0; r < *n_ranges; ++r) {
            BbRange range;
            if (!decodeString(data, pos, range.sectionSymbol))
                return fail();
            auto n_blocks = decodeUleb128(data, pos);
            auto offset = decodeUleb128(data, pos);
            if (!n_blocks || *n_blocks > data.size() || !offset)
                return fail();
            uint64_t cursor = *offset;
            for (uint64_t b = 0; b < *n_blocks; ++b) {
                BbEntry bb;
                auto id_flags = decodeUleb128(data, pos);
                auto size = decodeUleb128(data, pos);
                if (!id_flags || !size)
                    return fail();
                bb.bbId = static_cast<uint32_t>(*id_flags >> 3);
                bb.flags = static_cast<uint8_t>(*id_flags & 0x7);
                bb.offset = static_cast<uint32_t>(cursor);
                bb.size = static_cast<uint32_t>(*size);
                cursor += *size;
                if (features & kAddrMapFeatureHashes) {
                    auto hash = decodeUleb128(data, pos);
                    if (!hash)
                        return fail();
                    bb.hash = *hash;
                }
                if (features & kAddrMapFeatureSuccessors) {
                    auto n_succs = decodeUleb128(data, pos);
                    if (!n_succs || *n_succs > data.size())
                        return fail();
                    bb.succs.reserve(*n_succs);
                    for (uint64_t s = 0; s < *n_succs; ++s) {
                        auto succ = decodeUleb128(data, pos);
                        if (!succ)
                            return fail();
                        bb.succs.push_back(static_cast<uint32_t>(*succ));
                    }
                }
                range.blocks.push_back(std::move(bb));
            }
            map.ranges.push_back(std::move(range));
        }
        maps.push_back(std::move(map));
    }
    if (pos != data.size())
        return fail();
    return maps;
}

} // namespace propeller::elf
