#ifndef PROPELLER_ELF_BB_ADDR_MAP_H
#define PROPELLER_ELF_BB_ADDR_MAP_H

/**
 * @file
 * The basic block address map (paper section 3.2).
 *
 * Substitute for LLVM's SHT_LLVM_BB_ADDR_MAP.  For every function, codegen
 * records each machine basic block's offset, size and stable id, grouped
 * into one range per emitted text section (cluster).  The section is not
 * loaded at run time; its only consumers are the Phase 3 whole-program
 * analysis (mapping LBR addresses back to machine basic blocks) and the
 * Figure 6 size accounting.
 *
 * Encoding mirrors the real section: ULEB128 fields, one entry per
 * function, per-range block lists.  Two wire versions exist:
 *
 *  - **v1** (legacy): offsets, sizes, ids and flags only; the blob starts
 *    directly with the function count.
 *  - **v2**: starts with a 0x00 escape byte, a version number and a
 *    feature-bit field, and adds the stale-profile metadata — a stable
 *    per-block fingerprint, a per-function hash and per-block successor
 *    lists.  These are what let a profile collected on last week's binary
 *    be matched onto this week's build (src/stale).  A v2 blob ends with
 *    an 8-byte FNV-1a checksum over every preceding byte: ULEB128 streams
 *    can absorb bit flips silently, and the checksum is what makes any
 *    corruption of the metadata a *detected* rejection (ISSUE 4).
 *
 * v1 blobs still decode (a non-empty v1 blob can never start with 0x00:
 * a zero function count must be the entire payload).  Unknown versions or
 * unknown feature bits are a decode *error*, never undefined behavior.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace propeller::elf {

/** Per-block flags stored in the address map. */
enum BbFlags : uint8_t {
    kBbLandingPad = 0x01, ///< Block is an exception landing pad.
    kBbReturns = 0x02,    ///< Block ends in a return.
    kBbFallThrough = 0x04 ///< Block may fall through to the next block.
};

/** Wire format versions of the encoded section. */
enum class AddrMapVersion : uint8_t {
    V1 = 1, ///< Legacy: no fingerprints, no successor lists.
    V2 = 2, ///< Versioned header + feature bits + stale-profile metadata.
};

/** Feature bits of the v2 header. */
enum AddrMapFeatures : uint64_t {
    /** Per-block fingerprints and the per-function hash are present. */
    kAddrMapFeatureHashes = 0x1,
    /** Per-block successor id lists are present. */
    kAddrMapFeatureSuccessors = 0x2,
};

/** All feature bits a decoder of this version understands. */
constexpr uint64_t kAddrMapKnownFeatures =
    kAddrMapFeatureHashes | kAddrMapFeatureSuccessors;

/** One machine basic block inside a range. */
struct BbEntry
{
    uint32_t bbId = 0;   ///< Stable IR block id.
    uint32_t offset = 0; ///< Byte offset from the start of the range.
    uint32_t size = 0;   ///< Encoded size in bytes.
    uint8_t flags = 0;

    /**
     * Layout-invariant block fingerprint (v2): opcode stream, branch ids
     * and the 1-hop CFG neighborhood (see codegen/fingerprint.h).  Zero
     * in v1 blobs and for blocks without fingerprints.
     */
    uint64_t hash = 0;

    /** Static successor block ids, in terminator order (v2). */
    std::vector<uint32_t> succs;

    bool operator==(const BbEntry &) const = default;
};

/** One contiguous range (one text section / cluster) of a function. */
struct BbRange
{
    std::string sectionSymbol; ///< Symbol of the owning text section.
    std::vector<BbEntry> blocks;

    bool operator==(const BbRange &) const = default;
};

/** Address map metadata for one function. */
struct FunctionAddrMap
{
    std::string functionName;
    std::vector<BbRange> ranges;

    /**
     * Layout-invariant whole-function fingerprint (v2): combines every
     * block fingerprint in original block order.  Equal hashes mean the
     * function's CFG and instruction streams are unchanged, so a stale
     * profile maps over by block id with no further work.
     */
    uint64_t functionHash = 0;

    bool operator==(const FunctionAddrMap &) const = default;

    /** Total number of blocks across all ranges. */
    size_t blockCount() const;
};

/**
 * Encode a list of function address maps into section bytes.
 *
 * @param version wire format to emit; V1 drops hashes and successors.
 */
std::vector<uint8_t> encodeAddrMaps(const std::vector<FunctionAddrMap> &maps,
                                    AddrMapVersion version =
                                        AddrMapVersion::V2);

/**
 * Decode section bytes produced by encodeAddrMaps().
 *
 * Accepts both v1 and v2 blobs; rejects unknown versions, unknown
 * feature bits, and (for v2) any blob whose trailing checksum does not
 * verify.  Errors carry a context chain naming the failing function /
 * range / block, so a corrupt object is attributable from the workflow
 * layer.
 */
support::StatusOr<std::vector<FunctionAddrMap>>
decodeAddrMapsChecked(const std::vector<uint8_t> &data);

/**
 * Legacy wrapper around decodeAddrMapsChecked().
 *
 * @return decoded maps; returns an empty vector on malformed input (and
 *         sets @p ok to false if provided).
 */
std::vector<FunctionAddrMap> decodeAddrMaps(const std::vector<uint8_t> &data,
                                            bool *ok = nullptr);

} // namespace propeller::elf

#endif // PROPELLER_ELF_BB_ADDR_MAP_H
