#ifndef PROPELLER_ELF_BB_ADDR_MAP_H
#define PROPELLER_ELF_BB_ADDR_MAP_H

/**
 * @file
 * The basic block address map (paper section 3.2).
 *
 * Substitute for LLVM's SHT_LLVM_BB_ADDR_MAP.  For every function, codegen
 * records each machine basic block's offset, size and stable id, grouped
 * into one range per emitted text section (cluster).  The section is not
 * loaded at run time; its only consumers are the Phase 3 whole-program
 * analysis (mapping LBR addresses back to machine basic blocks) and the
 * Figure 6 size accounting.
 *
 * Encoding mirrors the real section: ULEB128 fields, one entry per
 * function, per-range block lists.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace propeller::elf {

/** Per-block flags stored in the address map. */
enum BbFlags : uint8_t {
    kBbLandingPad = 0x01, ///< Block is an exception landing pad.
    kBbReturns = 0x02,    ///< Block ends in a return.
    kBbFallThrough = 0x04 ///< Block may fall through to the next block.
};

/** One machine basic block inside a range. */
struct BbEntry
{
    uint32_t bbId = 0;   ///< Stable IR block id.
    uint32_t offset = 0; ///< Byte offset from the start of the range.
    uint32_t size = 0;   ///< Encoded size in bytes.
    uint8_t flags = 0;

    bool operator==(const BbEntry &) const = default;
};

/** One contiguous range (one text section / cluster) of a function. */
struct BbRange
{
    std::string sectionSymbol; ///< Symbol of the owning text section.
    std::vector<BbEntry> blocks;

    bool operator==(const BbRange &) const = default;
};

/** Address map metadata for one function. */
struct FunctionAddrMap
{
    std::string functionName;
    std::vector<BbRange> ranges;

    bool operator==(const FunctionAddrMap &) const = default;

    /** Total number of blocks across all ranges. */
    size_t blockCount() const;
};

/** Encode a list of function address maps into section bytes. */
std::vector<uint8_t> encodeAddrMaps(const std::vector<FunctionAddrMap> &maps);

/**
 * Decode section bytes produced by encodeAddrMaps().
 *
 * @return decoded maps; returns an empty vector on malformed input (and
 *         sets @p ok to false if provided).
 */
std::vector<FunctionAddrMap> decodeAddrMaps(const std::vector<uint8_t> &data,
                                            bool *ok = nullptr);

} // namespace propeller::elf

#endif // PROPELLER_ELF_BB_ADDR_MAP_H
