#ifndef PROPELLER_ELF_OBJECT_H
#define PROPELLER_ELF_OBJECT_H

/**
 * @file
 * The relocatable object file format.
 *
 * Substitute for x86-64 ELF relocatable objects.  A section is "a
 * contiguous range of bytes ... that the linker operates on as a single
 * unit" (paper section 4); this format supports function sections and the
 * paper's novel *basic block sections*, where one or more basic blocks of a
 * single function form their own text section with a symbol the linker can
 * order.
 *
 * Text sections are stored as a sequence of pieces: raw byte runs
 * interleaved with *branch sites*.  A branch site is a branch or call whose
 * target lives in another section, so its displacement is deferred to the
 * linker via a relocation (paper section 4.2).  The bespoke relaxation pass
 * operates purely on branch sites — no instruction is ever disassembled by
 * the linker, which is the property that distinguishes Propeller from
 * disassembly-driven optimizers.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "elf/bb_addr_map.h"
#include "isa/isa.h"

namespace propeller::elf {

/** Section types; determines linker treatment and Figure 6 bucketing. */
enum class SectionType : uint8_t {
    Text,      ///< Executable code.
    RoData,    ///< Read-only data (sizes only; not executed).
    BbAddrMap, ///< Basic block address map metadata (not loaded).
    EhFrame,   ///< Call frame information.
    Debug,     ///< DWARF-like debug information (not loaded).
    Other,     ///< Anything else (string tables etc.).
};

/**
 * A branch or call whose displacement the linker must resolve.
 *
 * In real ELF this is a static relocation plus the linker-relaxation
 * annotations of the paper's section 4.2; we keep the decoded form so the
 * relaxation pass can delete fall-through jumps and shrink displacements
 * without disassembling anything.
 */
struct BranchSite
{
    /** Emitted opcode; JmpNear / JccNear / Call (pre-relaxation forms). */
    isa::Opcode op = isa::Opcode::JmpNear;

    uint8_t flags = 0;     ///< Jcc flags (invert bit).
    uint8_t bias = 0;      ///< Jcc bias.
    uint32_t branchId = 0; ///< Jcc layout-invariant id.

    /** Name of the target section symbol (function or cluster). */
    std::string targetSymbol;

    /**
     * Id of the target basic block within the target section, or
     * kSectionStart to target the beginning of the section (calls).
     */
    uint32_t targetBb = 0;

    /**
     * This site is an unconditional jump to the fall-through successor
     * block (made explicit per paper section 4.2).  If the linker's final
     * layout places the target immediately after this instruction, the
     * relaxation pass deletes the jump entirely.
     */
    bool isFallThrough = false;
};

/** BranchSite::targetBb value meaning "start of the target section". */
constexpr uint32_t kSectionStart = 0xffffffff;

/** Marks the piece as the start of a machine basic block. */
struct BlockMark
{
    uint32_t bbId = 0;
    uint8_t flags = 0; ///< BbFlags.
};

/**
 * A run of literal bytes optionally preceded by a block boundary and
 * optionally terminated by one branch site.
 */
struct TextPiece
{
    std::optional<BlockMark> block;
    std::vector<uint8_t> bytes;
    std::optional<BranchSite> site;
};

/**
 * A call-frame-information frame descriptor entry (FDE).
 *
 * Per paper section 4.4, every contiguous fragment of a function needs its
 * own FDE re-establishing the CFA and callee-saved register rules, which is
 * why unclustered one-section-per-block layouts blow up .eh_frame.
 */
struct FrameDescriptor
{
    std::string sectionSymbol; ///< The code fragment this FDE covers.
    uint32_t codeLength = 0;
    uint8_t savedRegs = 0; ///< Callee-saved registers to re-describe.

    /** Encoded size: FDE header + CFA redefinition + per-register rules. */
    uint32_t
    byteSize() const
    {
        return 24 + 8 + 2u * savedRegs;
    }
};

/** One section of an object file. */
struct Section
{
    std::string name;
    SectionType type = SectionType::Text;
    uint32_t alignment = 1;

    /** Raw contents for non-text sections (and encoded metadata). */
    std::vector<uint8_t> bytes;

    /** Structured contents for text sections. */
    std::vector<TextPiece> pieces;

    /**
     * Text sections that are hand-written assembly (paper section 5.8)
     * carry embedded data; disassembly of them is unreliable.
     */
    bool isHandAsm = false;

    /** Total byte size of the section's contents. */
    uint64_t size() const;

    /** Number of branch sites (== static relocations) in this section. */
    uint32_t relocationCount() const;
};

/** Symbol kinds. */
enum class SymbolKind : uint8_t {
    Function, ///< Primary function entry symbol.
    Cluster,  ///< Additional basic-block-cluster symbol (.cold / .N).
};

/**
 * A linker symbol.  Symbols always label the start of a section in this
 * format (function sections / basic block sections), which is exactly the
 * granularity the symbol ordering file manipulates.
 */
struct Symbol
{
    std::string name;
    uint32_t sectionIndex = 0;
    SymbolKind kind = SymbolKind::Function;

    /**
     * Name of the function this symbol belongs to (equal to name for the
     * primary cluster).  Used for Figure 6 accounting and BOLT's function
     * discovery.
     */
    std::string parentFunction;
};

/** A relocatable object file: the unit of build-cache reuse. */
struct ObjectFile
{
    std::string name; ///< e.g. "mod_001.o".

    std::vector<Section> sections;
    std::vector<Symbol> symbols;

    /** BB address map entries for every function in this object. */
    std::vector<FunctionAddrMap> addrMaps;

    /** CFI frame descriptors, one or more per text section. */
    std::vector<FrameDescriptor> frames;

    /**
     * Functions in this object requiring startup integrity checks
     * (FIPS-140-2 analogue; see paper section 5.8).
     */
    std::vector<std::string> integrityCheckedFunctions;

    /**
     * Relocations carried by non-text sections (DW_AT_ranges endpoints
     * and debug type references, paper section 4.3).  Counted into the
     * .rela bucket when the binary is linked with --emit-relocs; these
     * are what make BOLT metadata binaries of debug builds enormous
     * (section 5.3: up to 43% of a debug Clang).
     */
    uint32_t debugRelocs = 0;

    /** Find the index of a section by name; -1 if absent. */
    int findSection(const std::string &name) const;

    /** Aggregate sizes per Figure 6 bucket. */
    struct SizeBreakdown
    {
        uint64_t text = 0;
        uint64_t ehFrame = 0;
        uint64_t bbAddrMap = 0;
        uint64_t relocs = 0;
        uint64_t debug = 0;
        uint64_t other = 0;

        uint64_t
        total() const
        {
            return text + ehFrame + bbAddrMap + relocs + debug + other;
        }

        SizeBreakdown &operator+=(const SizeBreakdown &rhs);
    };

    SizeBreakdown sizeBreakdown() const;

    /** Serialized size in bytes (what the build cache stores). */
    uint64_t sizeInBytes() const;

    /** Serialize to bytes for the content-addressed build cache. */
    std::vector<uint8_t> serialize() const;

    /** Inverse of serialize(); corruption is a typed error. */
    static support::StatusOr<ObjectFile>
    deserializeChecked(const std::vector<uint8_t> &data);

    /** Inverse of serialize(); aborts on malformed input. */
    static ObjectFile deserialize(const std::vector<uint8_t> &data);

    /** Content hash for cache keys. */
    uint64_t contentHash() const;
};

/** Size of one .rela entry, matching ELF64 (24 bytes). */
constexpr uint64_t kRelaEntrySize = 24;

} // namespace propeller::elf

#endif // PROPELLER_ELF_OBJECT_H
