#ifndef PROPELLER_WORKLOAD_WORKLOAD_H
#define PROPELLER_WORKLOAD_WORKLOAD_H

/**
 * @file
 * Synthetic warehouse-scale workload generation.
 *
 * Substitute for the paper's benchmark programs (Table 2): Clang, MySQL,
 * Spanner, Search, Superroot, Bigtable and the SPEC2017 integer suite.
 * Since those applications (and their production traffic) are not
 * available, the generator synthesizes programs whose *structural*
 * characteristics match Table 2 scaled down ~100x: function and basic
 * block counts, the fraction of cold object files, call-graph depth and
 * fanout, loop nests with realistic trip counts, rarely-taken error paths
 * inlined into hot functions (the reason function splitting pays, paper
 * section 4.6), multi-modal functions (section 4.7), hand-written assembly
 * with embedded data, and startup code-integrity checks (section 5.8).
 *
 * The microarchitecture the simulator models is scaled by the same factor
 * (see UarchConfig defaults), so the relative effects the paper reports
 * are preserved.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "sim/machine.h"

namespace propeller::workload {

/** Parameters describing one synthetic benchmark. */
struct WorkloadConfig
{
    std::string name;
    uint64_t seed = 1;

    uint32_t modules = 50;       ///< Translation units (build actions).
    uint32_t functions = 500;    ///< Total functions.
    uint32_t hotFunctions = 40;  ///< Functions that execute under load.

    /** Target fraction of object files containing no hot code. */
    double coldObjectFraction = 0.8;

    /** Basic blocks per function (skewed distribution bounds). */
    uint32_t minBlocks = 3;
    uint32_t maxBlocks = 60;

    /** Probability a region step inside a hot function is a cold path. */
    double coldPathDensity = 0.35;

    /**
     * Staleness of the baseline's instrumented-PGO profile: the fraction
     * of branchy regions whose unlikely side the baseline's block
     * placement fails to sink (source drift between training and
     * deployment, and optimization-pipeline profile mismatch — paper
     * section 2.2).  Propeller's precise late profile recovers these.
     */
    double pgoStaleness = 0.10;

    /** Average hot callees per non-leaf hot function. */
    uint32_t callFanout = 3;

    /** Functions subject to startup integrity checks (0 = none). */
    uint32_t integrityCheckedFunctions = 0;

    /** Hand-written assembly functions (embedded data). */
    uint32_t handAsmFunctions = 0;

    /** Fraction of functions carrying exception landing pads. */
    double ehFraction = 0.05;

    /** Multi-modal functions (two loops, distinct callees; section 4.7). */
    uint32_t multiModalFunctions = 0;

    /** Read-only data bytes per module. */
    uint64_t rodataPerModule = 2048;

    /** Text mapped on huge pages (the paper's Search configuration). */
    bool hugePages = false;

    /**
     * Built on the distributed build system (warehouse-scale apps) rather
     * than a developer workstation (Clang, MySQL, SPEC) — paper section 5.
     */
    bool distributedBuild = false;

    /** Modelled load-test duration for instrumented-PGO training (min). */
    double pgoTrainMinutes = 10.0;

    /** Modelled load-test duration for hardware profiling (minutes). */
    double propTrainMinutes = 10.0;

    /** Instruction budget for evaluation runs. */
    uint64_t evalInstructions = 4'000'000;

    /** Instruction budget for profiling runs. */
    uint64_t profileInstructions = 4'000'000;

    /** LBR sampling period during profiling. */
    uint64_t sampleLbrPeriod = 8'000;

    /**
     * Local worker threads for the parallel pipeline stages (per-module
     * codegen, per-function Ext-TSP).  0 = hardware_concurrency().
     * Results are byte-identical at any value.
     */
    unsigned jobs = 0;

    /**
     * Run the relink phases as a sequence of barrier-synchronized
     * parallel loops (the pre-task-graph engine) instead of the
     * work-stealing task graph.  Kept for ablation; artifacts are
     * byte-identical either way.
     */
    bool barrierScheduler = false;

    /**
     * Task-graph engine only: run worker queues in FIFO order instead
     * of critical-path priority order.  Kept for ablation and for the
     * scheduling-policy identity property tests; artifacts are
     * byte-identical either way.
     */
    bool fifoScheduler = false;

    /** Paper Table 2 values for this benchmark (for the bench printout). */
    std::string paperText;
    std::string paperFuncs;
    std::string paperBlocks;
    std::string paperCold;
};

/** Generate the IR program for @p config (deterministic in the seed). */
ir::Program generate(const WorkloadConfig &config);

/** The six named application benchmarks of Table 2. */
const std::vector<WorkloadConfig> &appConfigs();

/** The SPEC2017 integer-like small benchmarks. */
const std::vector<WorkloadConfig> &specConfigs();

/** Look up any config by name; asserts if unknown. */
const WorkloadConfig &configByName(const std::string &name);

/** Machine options for evaluation runs of @p config. */
sim::MachineOptions evalOptions(const WorkloadConfig &config);

/** Machine options for profiling runs of @p config. */
sim::MachineOptions profileOptions(const WorkloadConfig &config);

// ---------------------------------------------------------------------------
// Synthetic binary drift (paper section 2.2).
//
// In the warehouse-scale release cycle the profile feeding Propeller was
// collected on *last week's* binary.  applyDrift edits a generated program
// the way a week of development would: blocks are split, inserted, deleted
// and edited, functions appear and disappear — while the program stays
// verifier-clean and runnable.  src/stale is evaluated by profiling the
// original program and optimizing the drifted one.

/** Parameters of one synthetic drift episode. */
struct DriftSpec
{
    uint64_t seed = 1;

    /**
     * Drift rate in [0, 1]: the probability that any one basic block is
     * mutated; function additions/removals scale with it.  0 leaves the
     * program untouched.
     */
    double rate = 0.0;
};

/** What a drift episode actually changed. */
struct DriftStats
{
    uint32_t blocksSplit = 0;
    uint32_t blocksInserted = 0;  ///< New blocks placed on existing edges.
    uint32_t blocksDeleted = 0;
    uint32_t blocksEdited = 0;    ///< Instruction-level edits in place.
    uint32_t functionsAdded = 0;
    uint32_t functionsRemoved = 0;

    uint32_t
    total() const
    {
        return blocksSplit + blocksInserted + blocksDeleted + blocksEdited +
               functionsAdded + functionsRemoved;
    }
};

/**
 * Mutate @p program in place at the given drift rate (deterministic in the
 * spec).  The result always passes ir::verify; the entry function and
 * hand-written assembly are left untouched.
 */
DriftStats applyDrift(ir::Program &program, const DriftSpec &spec);

} // namespace propeller::workload

#endif // PROPELLER_WORKLOAD_WORKLOAD_H
