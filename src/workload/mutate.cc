#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.h"
#include "workload/workload.h"

namespace propeller::workload {

using ir::BasicBlock;
using ir::Function;
using ir::Inst;
using ir::InstKind;
using ir::Program;

namespace {

uint32_t
maxBlockId(const Function &fn)
{
    uint32_t max_id = 0;
    for (const auto &bb : fn.blocks)
        max_id = std::max(max_id, bb->id);
    return max_id;
}

size_t
blockIndex(const Function &fn, uint32_t id)
{
    for (size_t i = 0; i < fn.blocks.size(); ++i) {
        if (fn.blocks[i]->id == id)
            return i;
    }
    return fn.blocks.size();
}

/** Edit a body instruction in place (changes the block's fingerprint). */
bool
editBlock(BasicBlock &bb, Rng &rng)
{
    std::vector<size_t> body;
    for (size_t i = 0; i < bb.insts.size(); ++i) {
        InstKind k = bb.insts[i].kind;
        if (k == InstKind::Work || k == InstKind::WorkWide ||
            k == InstKind::Load || k == InstKind::Store)
            body.push_back(i);
    }
    if (body.empty()) {
        bb.insts.insert(bb.insts.begin(),
                        ir::makeWork(static_cast<uint8_t>(rng.below(16)),
                                     static_cast<uint32_t>(rng.next())));
        return true;
    }
    Inst &inst = bb.insts[body[rng.below(body.size())]];
    inst.imm ^= static_cast<uint32_t>(rng.next()) | 1u;
    return true;
}

/** Split a block: tail instructions move into a new fall-through block. */
bool
splitBlock(Function &fn, size_t idx, Rng &rng)
{
    BasicBlock &bb = *fn.blocks[idx];
    if (bb.insts.size() < 2)
        return false;
    uint32_t new_id = maxBlockId(fn) + 1;
    size_t cut = 1 + rng.below(bb.insts.size() - 1);

    auto tail = std::make_unique<BasicBlock>();
    tail->id = new_id;
    tail->insts.assign(bb.insts.begin() + cut, bb.insts.end());
    bb.insts.erase(bb.insts.begin() + cut, bb.insts.end());
    bb.insts.push_back(ir::makeBr(new_id));
    fn.blocks.insert(fn.blocks.begin() + idx + 1, std::move(tail));
    return true;
}

/** Insert a fresh block on one of the block's outgoing edges. */
bool
insertBlock(Function &fn, size_t idx, Rng &rng)
{
    BasicBlock &bb = *fn.blocks[idx];
    Inst &term = bb.insts.back();
    uint32_t *slot = nullptr;
    if (term.kind == InstKind::Br)
        slot = &term.target;
    else if (term.kind == InstKind::CondBr)
        slot = rng.chance(0.5) ? &term.trueTarget : &term.falseTarget;
    else
        return false; // Ret: no outgoing edge to stretch.

    uint32_t new_id = maxBlockId(fn) + 1;
    auto mid = std::make_unique<BasicBlock>();
    mid->id = new_id;
    mid->insts.push_back(ir::makeWork(static_cast<uint8_t>(rng.below(16)),
                                      static_cast<uint32_t>(rng.next())));
    mid->insts.push_back(ir::makeBr(*slot));
    *slot = new_id;
    fn.blocks.insert(fn.blocks.begin() + idx + 1, std::move(mid));
    return true;
}

/**
 * Delete a block and route its predecessors straight to its successor.
 * Restricted to non-entry blocks ending in an unconditional branch, so no
 * conditional branch (and its branchId) is lost and no new cycle can form
 * that the original program did not already contain.
 */
bool
deleteBlock(Function &fn, size_t idx)
{
    if (idx == 0 || fn.blocks.size() < 2)
        return false;
    BasicBlock &bb = *fn.blocks[idx];
    const Inst &term = bb.insts.back();
    if (term.kind != InstKind::Br || term.target == bb.id)
        return false;
    uint32_t dead = bb.id;
    uint32_t succ = term.target;

    for (auto &other : fn.blocks) {
        if (other->id == dead)
            continue;
        Inst &t = other->insts.back();
        if (t.kind == InstKind::Br && t.target == dead) {
            t.target = succ;
        } else if (t.kind == InstKind::CondBr) {
            if (t.trueTarget == dead)
                t.trueTarget = succ;
            if (t.falseTarget == dead)
                t.falseTarget = succ;
            if (t.trueTarget == t.falseTarget)
                t = ir::makeBr(t.trueTarget);
        }
    }
    fn.blocks.erase(fn.blocks.begin() + idx);
    return true;
}

/** A tiny two-block function standing in for newly written code. */
std::unique_ptr<Function>
makeDriftFunction(const std::string &name, Rng &rng)
{
    auto fn = std::make_unique<Function>();
    fn->name = name;
    auto b0 = std::make_unique<BasicBlock>();
    b0->id = 0;
    b0->insts.push_back(ir::makeWork(static_cast<uint8_t>(rng.below(16)),
                                     static_cast<uint32_t>(rng.next())));
    b0->insts.push_back(ir::makeBr(1));
    auto b1 = std::make_unique<BasicBlock>();
    b1->id = 1;
    b1->insts.push_back(ir::makeWork(static_cast<uint8_t>(rng.below(16)),
                                     static_cast<uint32_t>(rng.next())));
    b1->insts.push_back(ir::makeRet());
    fn->blocks.push_back(std::move(b0));
    fn->blocks.push_back(std::move(b1));
    return fn;
}

bool
eligible(const Program &program, const Function &fn)
{
    return !fn.isHandAsm && fn.name != program.entryFunction;
}

} // namespace

DriftStats
applyDrift(Program &program, const DriftSpec &spec)
{
    DriftStats stats;
    if (spec.rate <= 0.0)
        return stats;
    Rng rng(mix64(spec.seed, 0xd41f'7541'1e5dull));

    // ---- Block-level drift -------------------------------------------
    for (auto &module : program.modules) {
        for (auto &fn : module->functions) {
            if (!eligible(program, *fn))
                continue;
            // Snapshot the ids: ops below add and remove blocks.
            std::vector<uint32_t> ids;
            for (const auto &bb : fn->blocks)
                ids.push_back(bb->id);
            for (uint32_t id : ids) {
                if (!rng.chance(spec.rate))
                    continue;
                size_t idx = blockIndex(*fn, id);
                if (idx >= fn->blocks.size())
                    continue; // Deleted by an earlier op.
                switch (rng.below(4)) {
                case 0:
                    if (editBlock(*fn->blocks[idx], rng))
                        ++stats.blocksEdited;
                    break;
                case 1:
                    if (splitBlock(*fn, idx, rng))
                        ++stats.blocksSplit;
                    break;
                case 2:
                    if (insertBlock(*fn, idx, rng))
                        ++stats.blocksInserted;
                    break;
                default:
                    if (deleteBlock(*fn, idx))
                        ++stats.blocksDeleted;
                    break;
                }
            }
        }
    }

    // ---- New functions -----------------------------------------------
    uint32_t to_add = static_cast<uint32_t>(spec.rate * 20.0 + 1e-9);
    for (uint32_t k = 0; k < to_add; ++k) {
        std::string name;
        do {
            name = "drift_fn_" + std::to_string(rng.below(1u << 20));
        } while (program.findFunction(name));
        auto &module = program.modules[rng.below(program.modules.size())];
        module->functions.push_back(makeDriftFunction(name, rng));
        ++stats.functionsAdded;

        // Give the new code a caller so it is reachable (and may get hot).
        auto &caller_mod = program.modules[rng.below(program.modules.size())];
        std::vector<Function *> callers;
        for (auto &fn : caller_mod->functions) {
            if (!fn->isHandAsm && fn->name != name)
                callers.push_back(fn.get());
        }
        if (!callers.empty()) {
            Function &caller = *callers[rng.below(callers.size())];
            BasicBlock &bb = *caller.blocks[rng.below(caller.blocks.size())];
            bb.insts.insert(bb.insts.end() - 1, ir::makeCall(name));
        }
    }

    // ---- Removed functions -------------------------------------------
    uint32_t to_remove = static_cast<uint32_t>(spec.rate * 10.0 + 1e-9);
    for (uint32_t k = 0; k < to_remove; ++k) {
        // Candidates: ordinary functions in multi-function modules.
        std::vector<std::pair<size_t, size_t>> candidates;
        for (size_t m = 0; m < program.modules.size(); ++m) {
            auto &module = *program.modules[m];
            if (module.functions.size() < 2)
                continue;
            for (size_t f = 0; f < module.functions.size(); ++f) {
                const Function &fn = *module.functions[f];
                if (eligible(program, fn) &&
                    fn.name.rfind("drift_fn_", 0) != 0)
                    candidates.emplace_back(m, f);
            }
        }
        if (candidates.empty())
            break;
        auto [m, f] = candidates[rng.below(candidates.size())];
        std::string name = program.modules[m]->functions[f]->name;

        // Strip every call site, then the function itself.
        for (auto &module : program.modules) {
            for (auto &fn : module->functions) {
                for (auto &bb : fn->blocks) {
                    bb->insts.erase(
                        std::remove_if(bb->insts.begin(), bb->insts.end(),
                                       [&](const Inst &inst) {
                                           return inst.kind ==
                                                      InstKind::Call &&
                                                  inst.callee == name;
                                       }),
                        bb->insts.end());
                }
            }
        }
        program.modules[m]->functions.erase(
            program.modules[m]->functions.begin() + f);
        ++stats.functionsRemoved;
    }
    return stats;
}

} // namespace propeller::workload
