#include <cassert>

#include "workload/workload.h"

/**
 * @file
 * Named benchmark configurations matching paper Table 2, scaled ~100x
 * down in code size (the microarchitecture model is scaled to match; see
 * sim::UarchConfig).  The paper's reported characteristics are attached so
 * bench_table2 can print paper-vs-generated side by side.
 */

namespace propeller::workload {

namespace {

WorkloadConfig
base()
{
    WorkloadConfig cfg;
    cfg.callFanout = 3;
    cfg.ehFraction = 0.05;
    cfg.rodataPerModule = 2048;
    // Local parallelism (codegen fan-out, per-function WPA): all hardware
    // threads.  propeller-cli --jobs and the benches override per run.
    cfg.jobs = 0;
    return cfg;
}

std::vector<WorkloadConfig>
makeAppConfigs()
{
    std::vector<WorkloadConfig> configs;

    {
        WorkloadConfig c = base();
        c.name = "clang";
        c.seed = 121;
        c.modules = 160;
        c.functions = 1600;
        c.hotFunctions = 130;
        c.coldObjectFraction = 0.67;
        c.minBlocks = 3;
        c.maxBlocks = 33;
        c.coldPathDensity = 0.40;
        c.pgoStaleness = 0.26;
        c.handAsmFunctions = 2;
        c.multiModalFunctions = 6;
        c.paperText = "72 MB";
        c.paperFuncs = "160 K";
        c.paperBlocks = "2.1 M";
        c.paperCold = "67%";
        configs.push_back(c);
    }
    {
        WorkloadConfig c = base();
        c.name = "mysql";
        c.seed = 102;
        c.modules = 120;
        c.functions = 610;
        c.hotFunctions = 60;
        c.coldObjectFraction = 0.93;
        c.minBlocks = 3;
        c.maxBlocks = 63;
        c.coldPathDensity = 0.35;
        c.pgoStaleness = 0.18;
        c.handAsmFunctions = 1;
        c.multiModalFunctions = 2;
        c.paperText = "26 MB";
        c.paperFuncs = "61 K";
        c.paperBlocks = "1.4 M";
        c.paperCold = "93%";
        configs.push_back(c);
    }
    {
        WorkloadConfig c = base();
        c.name = "spanner";
        c.distributedBuild = true;
        c.pgoTrainMinutes = 48;
        c.propTrainMinutes = 45;
        c.seed = 1034;
        c.modules = 300;
        c.functions = 5620;
        c.hotFunctions = 150;
        c.coldObjectFraction = 0.83;
        c.minBlocks = 3;
        c.maxBlocks = 36;
        c.coldPathDensity = 0.38;
        c.pgoStaleness = 0.26;
        c.integrityCheckedFunctions = 3;
        c.handAsmFunctions = 4;
        c.multiModalFunctions = 8;
        c.paperText = "175 MB";
        c.paperFuncs = "562 K";
        c.paperBlocks = "7.8 M";
        c.paperCold = "83%";
        configs.push_back(c);
    }
    {
        WorkloadConfig c = base();
        c.name = "search";
        c.distributedBuild = true;
        c.pgoTrainMinutes = 8;
        c.propTrainMinutes = 8;
        c.seed = 104;
        c.modules = 400;
        c.functions = 17000;
        c.hotFunctions = 420;
        c.coldObjectFraction = 0.95;
        c.minBlocks = 3;
        c.maxBlocks = 28;
        c.coldPathDensity = 0.38;
        c.pgoStaleness = 0.34;
        c.handAsmFunctions = 6;
        c.multiModalFunctions = 10;
        c.hugePages = true;
        c.paperText = "413 MB";
        c.paperFuncs = "1.7 M";
        c.paperBlocks = "18 M";
        c.paperCold = "95%";
        configs.push_back(c);
    }
    {
        WorkloadConfig c = base();
        c.name = "superroot";
        c.distributedBuild = true;
        c.pgoTrainMinutes = 37;
        c.propTrainMinutes = 18;
        c.seed = 105;
        c.modules = 500;
        c.functions = 27000;
        c.hotFunctions = 900;
        c.coldObjectFraction = 0.82;
        c.minBlocks = 3;
        c.maxBlocks = 27;
        c.coldPathDensity = 0.36;
        c.pgoStaleness = 0.04;
        c.integrityCheckedFunctions = 4;
        c.handAsmFunctions = 8;
        c.multiModalFunctions = 12;
        c.paperText = "598 MB";
        c.paperFuncs = "2.7 M";
        c.paperBlocks = "30 M";
        c.paperCold = "82%";
        configs.push_back(c);
    }
    {
        WorkloadConfig c = base();
        c.name = "bigtable";
        c.distributedBuild = true;
        c.pgoTrainMinutes = 30;
        c.propTrainMinutes = 43;
        c.seed = 116;
        c.modules = 250;
        c.functions = 3680;
        c.hotFunctions = 750;
        c.coldObjectFraction = 0.88;
        c.minBlocks = 3;
        c.maxBlocks = 28;
        c.coldPathDensity = 0.37;
        c.pgoStaleness = 0.06;
        c.integrityCheckedFunctions = 3;
        c.handAsmFunctions = 3;
        c.multiModalFunctions = 6;
        c.paperText = "93 MB";
        c.paperFuncs = "368 K";
        c.paperBlocks = "4.2 M";
        c.paperCold = "88%";
        configs.push_back(c);
    }
    return configs;
}

WorkloadConfig
spec(const char *name, uint64_t seed, uint32_t modules, uint32_t functions,
     uint32_t hot, double cold, uint32_t max_blocks)
{
    WorkloadConfig c = base();
    c.name = name;
    c.seed = seed;
    c.modules = modules;
    c.functions = functions;
    c.hotFunctions = hot;
    c.coldObjectFraction = cold;
    c.minBlocks = 3;
    c.maxBlocks = max_blocks;
    c.coldPathDensity = 0.30;
    c.pgoStaleness = 0.12;
    c.ehFraction = 0.02;
    c.rodataPerModule = 1024;
    c.evalInstructions = 3'000'000;
    c.profileInstructions = 3'000'000;
    c.paperText = "34 KB - 4 MB";
    c.paperFuncs = "80 - 12 K";
    c.paperBlocks = "1 K - 107 K";
    c.paperCold = "21% - 88%";
    return c;
}

std::vector<WorkloadConfig>
makeSpecConfigs()
{
    return {
        spec("500.perlbench", 201, 12, 240, 100, 0.35, 23),
        spec("502.gcc", 202, 30, 1200, 300, 0.50, 21),
        spec("505.mcf", 203, 3, 9, 6, 0.25, 30),
        spec("523.xalancbmk", 204, 25, 900, 250, 0.55, 22),
        spec("525.x264", 205, 8, 150, 70, 0.40, 26),
        spec("531.deepsjeng", 206, 5, 30, 20, 0.30, 28),
        spec("541.leela", 207, 6, 60, 35, 0.35, 25),
        spec("557.xz", 208, 4, 25, 12, 0.45, 24),
    };
}

} // namespace

const std::vector<WorkloadConfig> &
appConfigs()
{
    static const std::vector<WorkloadConfig> configs = makeAppConfigs();
    return configs;
}

const std::vector<WorkloadConfig> &
specConfigs()
{
    static const std::vector<WorkloadConfig> configs = makeSpecConfigs();
    return configs;
}

const WorkloadConfig &
configByName(const std::string &name)
{
    for (const auto &cfg : appConfigs()) {
        if (cfg.name == name)
            return cfg;
    }
    for (const auto &cfg : specConfigs()) {
        if (cfg.name == name)
            return cfg;
    }
    assert(false && "unknown workload config");
    static WorkloadConfig dummy;
    return dummy;
}

} // namespace propeller::workload
