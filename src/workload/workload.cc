#include "workload/workload.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <set>

#include "support/rng.h"

namespace propeller::workload {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Inst;
using ir::Module;
using ir::Program;

/** Shared generation state. */
struct GenState
{
    Rng rng;
    uint32_t nextBranchId = 0;

    explicit GenState(uint64_t seed) : rng(seed) {}
};

/**
 * Builds one function's CFG out of structured regions.  Block creation
 * order is the "original" (baseline) layout, so realistic layout slack is
 * created by inlining rarely-taken paths where a PGO-less compiler would
 * put them.
 */
class FunctionSynth
{
  public:
    FunctionSynth(Function &fn, GenState &gen, uint32_t block_budget,
                  double cold_density, double pgo_staleness,
                  std::vector<std::string> hot_callees,
                  std::vector<std::string> cold_callees, bool landing_pad)
        : fn_(fn), gen_(gen), budget_(block_budget),
          coldDensity_(cold_density), pgoStaleness_(pgo_staleness),
          hotCallees_(std::move(hot_callees)),
          coldCallees_(std::move(cold_callees)), wantLandingPad_(landing_pad)
    {
    }

    void
    build()
    {
        uint32_t cur = newBlock();
        appendWork(cur, 2, 5);
        // Guarantee each designated hot callee at least one hot call site.
        for (const auto &callee : hotCallees_) {
            if (gen_.rng.chance(0.5))
                fn_.blocks[cur]->insts.push_back(ir::makeCall(callee));
        }

        // Warehouse-scale profiles are flat: functions execute briefly
        // (straight-line code with calls) and loops are short — the
        // instruction working set sweeps the hot text on every request.
        while (fn_.blocks.size() < budget_) {
            double pick = gen_.rng.uniform();
            if (pick < coldDensity_) {
                cur = buildColdPath(cur);
            } else if (pick < coldDensity_ + 0.10) {
                cur = buildLoop(cur);
            } else if (pick < coldDensity_ + 0.40) {
                cur = buildIf(cur);
            } else {
                appendWork(cur, 2, 6);
                maybeHotCall(cur, 0.55);
            }
        }
        appendWork(cur, 1, 3);
        fn_.blocks[cur]->insts.push_back(ir::makeRet());

        if (wantLandingPad_ && !padCreated_) {
            // No cold path got the pad; attach one explicitly off the
            // entry block (exceptional edge modelled as a rare branch).
            addLandingPadOffEntry();
        }

        // The baseline binary is PGO+ThinLTO optimized (paper section 5
        // methodology): profile-guided block placement already sinks cold
        // and unlikely blocks to the end of the function body (though
        // still in the same section — splitting them out is exactly what
        // Propeller adds).
        std::stable_partition(
            fn_.blocks.begin(), fn_.blocks.end(),
            [&](const std::unique_ptr<BasicBlock> &bb) {
                return !sunkBlocks_.count(bb->id) && !bb->isLandingPad;
            });
    }

  private:
    uint32_t
    newBlock()
    {
        auto bb = std::make_unique<BasicBlock>();
        bb->id = static_cast<uint32_t>(fn_.blocks.size());
        fn_.blocks.push_back(std::move(bb));
        return fn_.blocks.back()->id;
    }

    void
    appendWork(uint32_t b, uint32_t lo, uint32_t hi)
    {
        uint32_t n = static_cast<uint32_t>(gen_.rng.range(lo, hi));
        for (uint32_t i = 0; i < n; ++i) {
            uint8_t reg = static_cast<uint8_t>(gen_.rng.below(16));
            uint32_t imm = static_cast<uint32_t>(gen_.rng.below(4096));
            double kind = gen_.rng.uniform();
            if (kind < 0.55) {
                fn_.blocks[b]->insts.push_back(ir::makeWork(reg, imm));
            } else if (kind < 0.75) {
                fn_.blocks[b]->insts.push_back(ir::makeWorkWide(reg, imm));
            } else if (kind < 0.9) {
                fn_.blocks[b]->insts.push_back(ir::makeLoad(reg, imm));
            } else {
                fn_.blocks[b]->insts.push_back(ir::makeStore(reg, imm));
            }
        }
    }

    void
    maybeHotCall(uint32_t b, double p)
    {
        if (!hotCallees_.empty() && gen_.rng.chance(p)) {
            const std::string &callee =
                hotCallees_[gen_.rng.below(hotCallees_.size())];
            fn_.blocks[b]->insts.push_back(ir::makeCall(callee));
        }
    }

    void
    condBr(uint32_t b, uint32_t t, uint32_t f, uint8_t bias)
    {
        fn_.blocks[b]->insts.push_back(
            ir::makeCondBr(t, f, bias, gen_.nextBranchId++));
    }

    /**
     * Two-way region.  The unlikely side is *sunk* in the original order
     * (PGO-driven block placement does this in the baseline), so the hot
     * path falls through cur -> then -> join.
     */
    uint32_t
    buildIf(uint32_t cur)
    {
        appendWork(cur, 1, 3);
        // A stale training profile (paper section 2.2) gets a fraction of
        // placements wrong: either the likely direction was mis-estimated
        // (the hot side becomes a taken branch on every execution) or the
        // unlikely side is left inline (the hot path jumps over it).
        // Propeller's precise late profile repairs both.
        bool stale = gen_.rng.chance(pgoStaleness_);
        bool wrong_polarity = stale && gen_.rng.chance(0.6);
        uint32_t then_b;
        uint32_t else_b;
        if (wrong_polarity) {
            // Baseline lays the unlikely side as the fall-through.
            else_b = newBlock();
            then_b = newBlock();
        } else {
            then_b = newBlock();
            else_b = newBlock();
            if (!stale)
                sunkBlocks_.insert(else_b);
        }
        uint8_t bias = static_cast<uint8_t>(gen_.rng.range(226, 250));
        condBr(cur, then_b, else_b, bias);
        appendWork(then_b, 1, 5);
        maybeHotCall(then_b, 0.3);
        appendWork(else_b, 1, 5);
        maybeHotCall(else_b, 0.2);
        uint32_t join = newBlock();
        fn_.blocks[then_b]->insts.push_back(ir::makeBr(join));
        fn_.blocks[else_b]->insts.push_back(ir::makeBr(join));
        return join;
    }

    /** Single-block loop with a geometric trip count. */
    uint32_t
    buildLoop(uint32_t cur)
    {
        uint32_t head = newBlock();
        fn_.blocks[cur]->insts.push_back(ir::makeBr(head));
        appendWork(head, 2, 6);
        // Calls inside loops are rare so call trees do not multiply.
        maybeHotCall(head, 0.15);
        uint32_t exit = newBlock();
        // Deterministic trip count (real loops are mostly periodic).
        uint8_t trips = static_cast<uint8_t>(gen_.rng.skewed(3, 12));
        fn_.blocks[head]->insts.push_back(
            ir::makeLoopBr(head, exit, trips, gen_.nextBranchId++));
        return exit;
    }

    /**
     * Rarely (or never) executed path inlined right after the branch —
     * the code a compiler without precise profiles leaves in the hot
     * function body, and the reason splitting pays (paper section 4.6).
     */
    uint32_t
    buildColdPath(uint32_t cur)
    {
        appendWork(cur, 1, 2);
        uint32_t first_cold = newBlock();
        uint32_t chain = static_cast<uint32_t>(gen_.rng.range(1, 3));
        // Half the cold paths never execute, the rest are very rare.
        uint8_t bias =
            gen_.rng.chance(0.5) ? 0
                                 : static_cast<uint8_t>(gen_.rng.range(1, 2));
        bool is_pad = wantLandingPad_ && !padCreated_;
        if (is_pad) {
            fn_.blocks[first_cold]->isLandingPad = true;
            padCreated_ = true;
        }
        uint32_t cold = first_cold;
        sunkBlocks_.insert(first_cold);
        for (uint32_t i = 0; i < chain; ++i) {
            appendWork(cold, 2, 8);
            if (!coldCallees_.empty() && gen_.rng.chance(0.4)) {
                const std::string &callee =
                    coldCallees_[gen_.rng.below(coldCallees_.size())];
                fn_.blocks[cold]->insts.push_back(ir::makeCall(callee));
            }
            if (i + 1 < chain) {
                uint32_t next_cold = newBlock();
                sunkBlocks_.insert(next_cold);
                fn_.blocks[cold]->insts.push_back(ir::makeBr(next_cold));
                cold = next_cold;
            }
        }
        uint32_t join = newBlock();
        condBr(cur, first_cold, join, bias);
        if (gen_.rng.chance(0.5)) {
            fn_.blocks[cold]->insts.push_back(ir::makeRet());
        } else {
            fn_.blocks[cold]->insts.push_back(ir::makeBr(join));
        }
        return join;
    }

    void
    addLandingPadOffEntry()
    {
        // Split the entry terminator edge: entry currently has work and a
        // terminator already placed by build(); add pad reachable by a
        // rare branch from a fresh preheader appended after the fact is
        // invasive, so instead retrofit: the pad hangs off a new block
        // inserted before the final return of the last block.
        uint32_t pad = newBlock();
        fn_.blocks[pad]->isLandingPad = true;
        appendWork(pad, 2, 5);
        fn_.blocks[pad]->insts.push_back(ir::makeRet());

        // Rewire: find the last Ret block created by build() (not the
        // pad) and replace its Ret by a rare branch to the pad followed
        // by a Ret in a fresh block.
        for (size_t i = fn_.blocks.size(); i-- > 0;) {
            BasicBlock &bb = *fn_.blocks[i];
            if (bb.id == pad || bb.isLandingPad)
                continue;
            if (bb.terminator().kind == ir::InstKind::Ret) {
                bb.insts.pop_back();
                uint32_t ret_b = newBlock();
                fn_.blocks[ret_b]->insts.push_back(ir::makeRet());
                condBr(bb.id, pad, ret_b, 0);
                break;
            }
        }
        padCreated_ = true;
    }

    Function &fn_;
    GenState &gen_;
    /** Blocks the baseline's PGO placement sinks to the function end. */
    std::set<uint32_t> sunkBlocks_;
    uint32_t budget_;
    double coldDensity_;
    double pgoStaleness_;
    std::vector<std::string> hotCallees_;
    std::vector<std::string> coldCallees_;
    bool wantLandingPad_;
    bool padCreated_ = false;
};

/** Cold function: same size distribution as hot code, never sampled. */
void
buildColdFunction(Function &fn, GenState &gen, uint32_t budget,
                  const std::vector<std::string> &deeper)
{
    FunctionSynth synth(fn, gen, budget, 0.15, 0.0, {}, deeper, false);
    synth.build();
}

/** Hand-written assembly stub: tiny body, embedded data appended later. */
void
buildHandAsmFunction(Function &fn, GenState &gen)
{
    fn.isHandAsm = true;
    auto bb = std::make_unique<BasicBlock>();
    bb->id = 0;
    uint32_t n = static_cast<uint32_t>(gen.rng.range(3, 9));
    for (uint32_t i = 0; i < n; ++i)
        bb->insts.push_back(
            ir::makeWork(static_cast<uint8_t>(i % 16), 7 * i + 1));
    bb->insts.push_back(ir::makeRet());
    fn.blocks.push_back(std::move(bb));
}

/** Multi-modal function of paper Figure 3: two loops, distinct callees. */
void
buildMultiModalFunction(Function &fn, GenState &gen,
                        const std::string &callee_a,
                        const std::string &callee_b)
{
    auto add = [&](bool pad = false) {
        auto bb = std::make_unique<BasicBlock>();
        bb->id = static_cast<uint32_t>(fn.blocks.size());
        bb->isLandingPad = pad;
        fn.blocks.push_back(std::move(bb));
        return fn.blocks.back()->id;
    };
    uint32_t entry = add();
    uint32_t loop1 = add();
    uint32_t loop2 = add();
    uint32_t exit = add();

    auto work = [&](uint32_t b, int n) {
        for (int i = 0; i < n; ++i)
            fn.blocks[b]->insts.push_back(
                ir::makeWork(static_cast<uint8_t>(i), 11u * i));
    };

    work(entry, 3);
    fn.blocks[entry]->insts.push_back(ir::makeCondBr(
        loop1, loop2, static_cast<uint8_t>(gen.rng.range(100, 156)),
        gen.nextBranchId++));

    work(loop1, 2);
    fn.blocks[loop1]->insts.push_back(ir::makeCall(callee_a));
    fn.blocks[loop1]->insts.push_back(ir::makeLoopBr(
        loop1, exit, static_cast<uint8_t>(gen.rng.range(12, 28)),
        gen.nextBranchId++));

    work(loop2, 2);
    fn.blocks[loop2]->insts.push_back(ir::makeCall(callee_b));
    fn.blocks[loop2]->insts.push_back(ir::makeLoopBr(
        loop2, exit, static_cast<uint8_t>(gen.rng.range(12, 28)),
        gen.nextBranchId++));

    work(exit, 1);
    fn.blocks[exit]->insts.push_back(ir::makeRet());
}

/**
 * The entry function: an outer request loop dispatching over the
 * top-level handlers with skewed frequencies.
 */
void
buildEntryFunction(Function &fn, GenState &gen,
                   const std::vector<std::string> &handlers)
{
    auto add = [&]() {
        auto bb = std::make_unique<BasicBlock>();
        bb->id = static_cast<uint32_t>(fn.blocks.size());
        fn.blocks.push_back(std::move(bb));
        return fn.blocks.back()->id;
    };
    auto work = [&](uint32_t b, int n) {
        for (int i = 0; i < n; ++i)
            fn.blocks[b]->insts.push_back(
                ir::makeWork(static_cast<uint8_t>(i), 3u * i));
    };

    uint32_t entry = add();
    work(entry, 3);

    size_t k = handlers.size();
    assert(k >= 1);

    // Pre-create the dispatch skeleton block ids.
    std::vector<uint32_t> dispatch(k);
    std::vector<uint32_t> callers(k);
    for (size_t i = 0; i < k; ++i) {
        dispatch[i] = add();
        callers[i] = add();
    }
    uint32_t latch = add();
    uint32_t latch2 = add();
    uint32_t exit = add();

    fn.blocks[entry]->insts.push_back(ir::makeBr(dispatch[0]));

    for (size_t i = 0; i < k; ++i) {
        work(dispatch[i], 1);
        uint8_t bias = static_cast<uint8_t>(
            i + 1 < k ? 232 - 6 * std::min<size_t>(i, 12) : 255);
        uint32_t next = i + 1 < k ? dispatch[i + 1] : latch;
        if (i + 1 < k) {
            fn.blocks[dispatch[i]]->insts.push_back(ir::makeCondBr(
                callers[i], next, bias, gen.nextBranchId++));
        } else {
            // Last dispatch block always invokes its handler.
            fn.blocks[dispatch[i]]->insts.push_back(
                ir::makeBr(callers[i]));
            next = latch;
        }
        work(callers[i], 1);
        fn.blocks[callers[i]]->insts.push_back(ir::makeCall(handlers[i]));
        fn.blocks[callers[i]]->insts.push_back(ir::makeBr(latch));
    }

    // Two nested request loops sustain ~64K iterations, far beyond any
    // simulation budget, so runs are always budget-bound (comparable
    // across binaries) rather than ending with the program.
    work(latch, 1);
    fn.blocks[latch]->insts.push_back(
        ir::makeLoopBr(dispatch[0], latch2, 255, gen.nextBranchId++));
    work(latch2, 1);
    fn.blocks[latch2]->insts.push_back(
        ir::makeLoopBr(dispatch[0], exit, 255, gen.nextBranchId++));
    fn.blocks[exit]->insts.push_back(ir::makeRet());
}

std::string
functionName(uint32_t idx)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "fn_%05u", idx);
    return buf;
}

std::string
moduleName(uint32_t idx)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "mod_%04u", idx);
    return buf;
}

} // namespace

ir::Program
generate(const WorkloadConfig &cfg)
{
    assert(cfg.hotFunctions >= 2 && cfg.functions > cfg.hotFunctions);
    GenState gen(cfg.seed);

    Program program;
    program.name = cfg.name;
    program.entryFunction = "main";

    // ---- Partition functions: hot levels, multi-modal, cold, hand-asm --
    uint32_t n_hot = cfg.hotFunctions;
    uint32_t n_mm = std::min(cfg.multiModalFunctions, n_hot / 4);
    uint32_t n_hand = cfg.handAsmFunctions;
    uint32_t n_cold = cfg.functions - n_hot - n_hand;

    // Hot function names; levels form a DAG (calls go strictly deeper).
    std::vector<std::string> hot_names(n_hot);
    for (uint32_t i = 0; i < n_hot; ++i)
        hot_names[i] = functionName(i);

    constexpr uint32_t kLevels = 4;
    std::vector<std::vector<uint32_t>> level_members(kLevels);
    for (uint32_t i = 0; i < n_hot; ++i) {
        // Skew membership toward the shallow levels.
        uint32_t level = static_cast<uint32_t>(
            gen.rng.skewed(0, kLevels - 1));
        level_members[level].push_back(i);
    }
    // Every level must be populated; steal from the largest level so no
    // function appears twice.
    for (uint32_t l = 0; l < kLevels; ++l) {
        if (!level_members[l].empty())
            continue;
        uint32_t donor = 0;
        for (uint32_t d = 1; d < kLevels; ++d) {
            if (level_members[d].size() > level_members[donor].size())
                donor = d;
        }
        assert(level_members[donor].size() > 1 && "too few hot functions");
        level_members[l].push_back(level_members[donor].back());
        level_members[donor].pop_back();
    }

    // Multi-modal functions live at level 0/1; their dedicated callees are
    // drawn from the deepest level.
    std::vector<uint32_t> mm_funcs;
    for (uint32_t i = 0; i < n_mm && i < level_members[1].size(); ++i)
        mm_funcs.push_back(level_members[1][i]);

    std::vector<std::string> cold_names(n_cold);
    for (uint32_t i = 0; i < n_cold; ++i)
        cold_names[i] = functionName(n_hot + i);
    std::vector<std::string> hand_names(n_hand);
    for (uint32_t i = 0; i < n_hand; ++i)
        hand_names[i] = functionName(n_hot + n_cold + i);

    // ---- Build hot functions -------------------------------------------
    std::vector<std::unique_ptr<ir::Function>> functions;
    functions.reserve(cfg.functions + 1);

    auto coldSubset = [&](size_t max_n) {
        std::vector<std::string> subset;
        if (cold_names.empty())
            return subset;
        size_t n = 1 + gen.rng.below(max_n);
        for (size_t i = 0; i < n; ++i)
            subset.push_back(cold_names[gen.rng.below(cold_names.size())]);
        return subset;
    };

    std::vector<bool> has_designated_caller(n_hot, false);

    for (uint32_t level = 0; level < kLevels; ++level) {
        for (uint32_t idx : level_members[level]) {
            auto fn = std::make_unique<Function>();
            fn->name = hot_names[idx];

            bool is_mm = false;
            for (uint32_t m : mm_funcs)
                is_mm |= (m == idx);

            if (is_mm && level + 1 < kLevels &&
                level_members[kLevels - 1].size() >= 2) {
                const auto &leaves = level_members[kLevels - 1];
                uint32_t a = leaves[gen.rng.below(leaves.size())];
                uint32_t b = leaves[gen.rng.below(leaves.size())];
                has_designated_caller[a] = true;
                has_designated_caller[b] = true;
                buildMultiModalFunction(*fn, gen, hot_names[a],
                                        hot_names[b]);
            } else {
                // Hot callees from deeper levels.
                std::vector<std::string> callees;
                if (level + 1 < kLevels) {
                    const auto &deeper = level_members[level + 1];
                    // Designate one un-called deeper function if available.
                    for (uint32_t cand : deeper) {
                        if (!has_designated_caller[cand]) {
                            has_designated_caller[cand] = true;
                            callees.push_back(hot_names[cand]);
                            break;
                        }
                    }
                    uint32_t extra = static_cast<uint32_t>(
                        gen.rng.below(cfg.callFanout + 1));
                    for (uint32_t e = 0; e < extra; ++e)
                        callees.push_back(
                            hot_names[deeper[gen.rng.below(deeper.size())]]);
                }
                uint32_t budget = static_cast<uint32_t>(
                    gen.rng.skewed(cfg.minBlocks, cfg.maxBlocks));
                FunctionSynth synth(*fn, gen, std::max(budget, 4u),
                                    cfg.coldPathDensity, cfg.pgoStaleness,
                                    callees, coldSubset(3),
                                    gen.rng.chance(cfg.ehFraction));
                synth.build();
            }
            functions.push_back(std::move(fn));
        }
    }

    // Any deep hot function still lacking a caller gets called from the
    // entry loop handler list below, so nothing stays unreachable by
    // construction of levels 0 handlers.

    // ---- Build cold functions ------------------------------------------
    for (uint32_t i = 0; i < n_cold; ++i) {
        auto fn = std::make_unique<Function>();
        fn->name = cold_names[i];
        std::vector<std::string> deeper;
        // Cold call DAG: only call cold functions with larger index.
        for (uint32_t d = 0; d < 2 && i + 1 < n_cold; ++d) {
            uint32_t j =
                i + 1 + static_cast<uint32_t>(gen.rng.below(n_cold - i - 1));
            deeper.push_back(cold_names[j]);
        }
        buildColdFunction(
            *fn, gen,
            static_cast<uint32_t>(
                gen.rng.skewed(cfg.minBlocks, cfg.maxBlocks)),
            deeper);
        functions.push_back(std::move(fn));
    }

    // ---- Hand-written assembly -----------------------------------------
    for (uint32_t i = 0; i < n_hand; ++i) {
        auto fn = std::make_unique<Function>();
        fn->name = hand_names[i];
        buildHandAsmFunction(*fn, gen);
        functions.push_back(std::move(fn));
    }

    // ---- Entry function --------------------------------------------------
    {
        std::vector<std::string> handlers;
        for (uint32_t idx : level_members[0])
            handlers.push_back(hot_names[idx]);
        // Un-called deeper functions become extra handlers.
        for (uint32_t i = 0; i < n_hot; ++i) {
            bool is_level0 = false;
            for (uint32_t idx : level_members[0])
                is_level0 |= (idx == i);
            if (!is_level0 && !has_designated_caller[i])
                handlers.push_back(hot_names[i]);
        }
        if (handlers.size() > 12)
            handlers.resize(12);

        // Functions dropped by the resize still need a caller.
        std::vector<std::string> extra;
        for (uint32_t i = 0; i < n_hot; ++i) {
            bool covered = has_designated_caller[i];
            for (const auto &h : handlers)
                covered |= (h == hot_names[i]);
            if (!covered)
                extra.push_back(hot_names[i]);
        }

        auto fn = std::make_unique<Function>();
        fn->name = "main";
        buildEntryFunction(*fn, gen, handlers);
        // Attach stragglers to the latch-adjacent caller blocks.
        if (!extra.empty()) {
            for (size_t i = 0; i < extra.size(); ++i) {
                uint32_t b = static_cast<uint32_t>(
                    1 + gen.rng.below(fn->blocks.size() - 2));
                auto &insts = fn->blocks[b]->insts;
                insts.insert(insts.end() - 1, ir::makeCall(extra[i]));
            }
        }
        functions.push_back(std::move(fn));
    }

    // ---- Integrity-checked functions (hot, so rewriting breaks them) ---
    for (uint32_t i = 0; i < cfg.integrityCheckedFunctions && i < n_hot;
         ++i) {
        for (auto &fn : functions) {
            if (fn->name == hot_names[level_members[0][i %
                                      level_members[0].size()]]) {
                fn->hasIntegrityCheck = true;
                break;
            }
        }
    }

    // ---- Assign functions to modules ------------------------------------
    uint32_t hot_modules = std::max<uint32_t>(
        1, static_cast<uint32_t>(cfg.modules * (1.0 - cfg.coldObjectFraction)
                                 + 0.5));
    hot_modules = std::min(hot_modules, cfg.modules);

    program.modules.reserve(cfg.modules);
    for (uint32_t m = 0; m < cfg.modules; ++m) {
        auto mod = std::make_unique<Module>();
        mod->name = moduleName(m);
        mod->rodataBytes =
            cfg.rodataPerModule / 2 + gen.rng.below(cfg.rodataPerModule + 1);
        program.modules.push_back(std::move(mod));
    }

    // Hot modules are spread across the module (and therefore link input)
    // order — hot code in real applications is scattered through the
    // binary, which is exactly the dispersion Propeller's global symbol
    // ordering fixes (Figure 7).
    std::vector<uint32_t> hot_module_ids(hot_modules);
    for (uint32_t j = 0; j < hot_modules; ++j) {
        hot_module_ids[j] = static_cast<uint32_t>(
            static_cast<uint64_t>(j) * cfg.modules / hot_modules);
    }

    std::set<std::string> hot_set(hot_names.begin(), hot_names.end());
    hot_set.insert("main");
    uint32_t hot_rr = 0;
    uint32_t all_rr = 0;
    for (auto &fn : functions) {
        uint32_t m;
        if (hot_set.count(fn->name)) {
            m = hot_module_ids[hot_rr++ % hot_modules];
        } else {
            m = all_rr++ % cfg.modules;
        }
        program.modules[m]->functions.push_back(std::move(fn));
    }

    // Drop empty modules (possible for tiny configs).
    std::vector<std::unique_ptr<Module>> kept;
    for (auto &mod : program.modules) {
        if (!mod->functions.empty())
            kept.push_back(std::move(mod));
    }
    program.modules = std::move(kept);

    return program;
}

sim::MachineOptions
evalOptions(const WorkloadConfig &cfg)
{
    sim::MachineOptions opts;
    opts.seed = cfg.seed * 2654435761u + 17;
    opts.maxInstructions = cfg.evalInstructions;
    return opts;
}

sim::MachineOptions
profileOptions(const WorkloadConfig &cfg)
{
    sim::MachineOptions opts = evalOptions(cfg);
    // Profiles come from a load test, not the evaluation run itself: use a
    // different input stream (seed) with the same statistical behaviour.
    opts.seed = cfg.seed * 2654435761u + 9999;
    opts.maxInstructions = cfg.profileInstructions;
    opts.collectLbr = true;
    opts.lbrSamplePeriod = cfg.sampleLbrPeriod;
    return opts;
}

} // namespace propeller::workload
