#!/usr/bin/env python3
"""Merge per-gate BENCH_*.json files into one trajectory artifact.

Each bench binary emits a flat JSON object of gate metrics.  CI uploads
them individually; this script folds every BENCH_*.json it finds into a
single BENCH_all.json keyed by gate name, with a summary block so a
dashboard (or a human) can read one file per commit.

Usage: aggregate_bench.py [--dir DIR] [--out FILE]

Exits nonzero if a file exists but is unparseable — a gate that wrote
garbage should fail the pipeline, not vanish from the trajectory.
"""

import argparse
import glob
import json
import os
import sys


def main():
    parser = argparse.ArgumentParser(
        description="merge BENCH_*.json gate outputs")
    parser.add_argument("--dir", default=".",
                        help="directory holding BENCH_*.json files")
    parser.add_argument("--out", default="BENCH_all.json",
                        help="merged output path")
    args = parser.parse_args()

    merged = {}
    bad = []
    out_abs = os.path.abspath(args.out)
    for path in sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json"))):
        if os.path.abspath(path) == out_abs:
            continue
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        if name == "all":
            continue
        try:
            with open(path, "r", encoding="utf-8") as f:
                merged[name] = json.load(f)
        except (OSError, ValueError) as err:
            bad.append((path, str(err)))

    if bad:
        for path, err in bad:
            print(f"aggregate_bench: cannot parse {path}: {err}",
                  file=sys.stderr)
        return 1
    if not merged:
        print(f"aggregate_bench: no BENCH_*.json under {args.dir}",
              file=sys.stderr)
        return 1

    # A small summary block with the headline number of each gate, so
    # the trajectory is greppable without knowing every gate's schema.
    headline_keys = [
        "makespan_over_lower_bound", "speedup_over_barrier",
        "layout_speedup_4_threads", "cache_hit_rate", "retention",
        "false_positives", "false_negatives",
        "steal_hit_rate_jobs8", "steal_attempts_jobs8",
        "warm_layout_hit_rate", "warm_stage_speedup",
        "drift_layout_hit_rate", "persisted_layout_hit_rate",
        "steady_state_retention", "relinks_triggered", "drift_crossings",
        "primed_hits", "warm_hit_rate_steady",
        "shards_seen", "lag_peak_epochs", "relink_failures",
        "degraded_epochs", "torn_cache_crash_points",
    ]
    summary = {}
    for name, data in merged.items():
        if not isinstance(data, dict):
            continue
        picked = {k: data[k] for k in headline_keys if k in data}
        bools = {k: v for k, v in data.items() if isinstance(v, bool)}
        if picked or bools:
            summary[name] = {**picked, **bools}

    result = {"gates": merged, "summary": summary}
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"aggregate_bench: merged {len(merged)} gate(s) "
          f"({', '.join(sorted(merged))}) into {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
