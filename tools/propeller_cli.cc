/**
 * @file
 * propeller-cli — command-line driver for the whole framework.
 *
 * Subcommands:
 *
 *   list                         list the named workloads
 *   run <workload>               full pipeline: baseline vs Propeller vs
 *                                BOLT with counters and phase reports;
 *                                with --fault-inject <spec> the pipeline
 *                                runs under seeded corruption of profile
 *                                shards, cached objects and .bb_addr_map
 *                                payloads (src/faultinject) and reports
 *                                what was injected, detected and
 *                                quarantined; with --stale-profile N the
 *                                whole drift sweep replays end-to-end
 *                                (profile last week's build, optimize a
 *                                build drifted N%, compare against the
 *                                fresh-profile ground truth)
 *   wpa <workload>               print the Phase 3 artifacts
 *                                (cc_prof.txt / ld_prof.txt); with
 *                                --stale-profile N the profile is applied
 *                                to a build drifted N% from the profiled
 *                                one — rejected on identity mismatch
 *                                unless --allow-stale routes it through
 *                                the stale matcher (src/stale)
 *   verify <workload>            statically verify the Propeller-
 *                                optimized binary: IR invariants, then
 *                                the post-link disassembly cross-check
 *                                (src/analysis) over a metadata-keeping
 *                                twin of PO plus lints of the applied
 *                                Phase 3 artifacts; --json emits the CI
 *                                artifact form, --suppress PV004,...
 *                                mutes specific checks
 *   disasm <workload> <symbol>   disassemble one function of the
 *                                Propeller-optimized binary
 *   heatmap <workload>           instruction-access heat maps
 *                                (baseline vs optimized)
 *
 * Examples:
 *   ./build/tools/propeller-cli run 541.leela
 *   ./build/tools/propeller-cli disasm clang main
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "build/workflow.h"
#include "faultinject/chaos.h"
#include "faultinject/faultinject.h"
#include "ir/verifier.h"
#include "service/fleet.h"
#include "sim/machine.h"
#include "stale/stale.h"
#include "support/table.h"
#include "support/units.h"

using namespace propeller;

namespace {

/**
 * --jobs N: worker threads for every parallel pipeline stage — the
 * scheduler owns the one concurrency setting (0 = all hardware threads).
 */
unsigned g_jobs = 0;

/** --scheduler barrier: run the phase-barriered engine (ablation). */
bool g_barrier = false;

/** --backend bolt: route the verify subcommand at the BOLT output. */
std::string g_backend = "propeller";

/** --stale-profile N: drift the WPA target binary N% from the profiled one. */
double g_stale_pct = 0.0;
bool g_stale_requested = false;

/** --allow-stale: route mismatched profiles through the stale matcher. */
bool g_allow_stale = false;

/** --fault-inject <spec>: run the pipeline under seeded corruption. */
std::string g_fault_spec;
bool g_fault_requested = false;

/** --suppress LIST: check ids the verify subcommand mutes. */
std::string g_suppress;

/** --json: render the verify report as the CI artifact JSON. */
bool g_json = false;

/** --trace-out FILE: dump the relink schedule as a Chrome trace. */
std::string g_trace_out;

/** serve: fleet-service knobs (see fleet::FleetOptions). */
unsigned g_machines = 8;
unsigned g_epochs = 8;
unsigned g_versions = 3;
double g_drift_threshold = 0.15;
double g_drift_pct = 10.0;
double g_decay = 0.5;
std::string g_statusz_out;
std::string g_cache_path;

/** serve: chaos schedule spec (faultinject::parseChaosSpec). */
std::string g_chaos_spec;
bool g_chaos_requested = false;

/** serve: weight the drift metric by block byte size. */
bool g_weighted_drift = false;

/** serve: canary rollout/rollback epochs (~0u = disabled). */
unsigned g_canary_at = ~0u;
unsigned g_rollback_at = ~0u;

/** Look up a workload and apply the global --jobs override. */
workload::WorkloadConfig
namedConfig(const std::string &name)
{
    workload::WorkloadConfig cfg = workload::configByName(name);
    cfg.jobs = g_jobs;
    cfg.barrierScheduler = g_barrier;
    return cfg;
}

int
cmdList()
{
    std::printf("warehouse-scale / open-source workloads:\n");
    for (const auto &cfg : workload::appConfigs())
        std::printf("  %-12s %zu funcs, %s%s\n", cfg.name.c_str(),
                    static_cast<size_t>(cfg.functions),
                    cfg.distributedBuild ? "distributed build"
                                         : "workstation build",
                    cfg.hugePages ? ", huge pages" : "");
    std::printf("SPEC2017-like:\n");
    for (const auto &cfg : workload::specConfigs())
        std::printf("  %s\n", cfg.name.c_str());
    return 0;
}

void
printCounters(const char *label, const sim::RunResult &r,
              const sim::RunResult &base)
{
    double delta = static_cast<double>(base.counters.cycles()) /
                       static_cast<double>(r.counters.cycles()) -
                   1.0;
    std::printf("  %-10s %10llu cycles (%s)  l1i=%llu itlb=%llu "
                "taken=%llu dsb=%llu\n",
                label,
                static_cast<unsigned long long>(r.counters.cycles()),
                formatPercentDelta(delta).c_str(),
                static_cast<unsigned long long>(r.counters.l1iMisses),
                static_cast<unsigned long long>(r.counters.itlbMisses),
                static_cast<unsigned long long>(r.counters.takenBranches),
                static_cast<unsigned long long>(r.counters.dsbMisses));
}

int usage();

/**
 * Per-shard version census of a profile's wire form.  Every wire shard
 * carries its own binary identity stamp, so a mismatch can be pinned to
 * the shards that actually came from another build — the single
 * whole-profile binaryHash gate can only say "something differs".
 */
void
printShardVersionCensus(const profile::Profile &prof, uint64_t targetHash)
{
    profile::ShardLoadStats stats;
    profile::loadShards(profile::serializeShards(prof, 4096), &stats);
    std::map<uint64_t, uint32_t> census;
    for (uint64_t v : stats.shardVersions) {
        if (v != 0)
            ++census[v];
    }
    std::fprintf(stderr, "per-shard version census (%u shard(s), %u "
                         "distinct version(s)):\n",
                 stats.shardsTotal, stats.distinctVersions);
    for (const auto &[version, shards] : census)
        std::fprintf(stderr, "  %u shard(s) stamped %016llx%s\n", shards,
                     static_cast<unsigned long long>(version),
                     version == targetHash ? "  [matches target]" : "");
}

/**
 * `run --stale-profile N`: the end-to-end drift replay.  Last week's
 * build is profiled; this week's build (drifted N%) is optimized with
 * that stale profile, and both are compared against the fresh-profile
 * ground truth on the drifted binary.
 */
int
cmdRunStale(const workload::WorkloadConfig &cfg)
{
    // Last week: the pristine build and its profile.
    buildsys::Workflow wf(cfg);
    const linker::Executable &profiled = wf.metadataBinary();
    const profile::Profile &prof = wf.profile();

    // This week: the same program, drifted.
    ir::Program drifted = workload::generate(cfg);
    workload::DriftSpec dspec;
    dspec.seed = cfg.seed + 1;
    dspec.rate = g_stale_pct / 100.0;
    workload::DriftStats drift = workload::applyDrift(drifted, dspec);

    codegen::Options copts;
    copts.emitAddrMapSection = true;
    std::vector<elf::ObjectFile> objects =
        codegen::compileProgram(drifted, copts);
    linker::Options mopts;
    mopts.entrySymbol = drifted.entryFunction;
    mopts.outputName = cfg.name + ".pm-drift";
    linker::Executable target = linker::link(objects, mopts);

    bool mismatch =
        prof.binaryHash != 0 && prof.binaryHash != target.identityHash;
    if (mismatch && !g_allow_stale) {
        std::fprintf(stderr,
                     "propeller-cli: profile identity mismatch after %u "
                     "drift mutations; rerun with --allow-stale to match "
                     "by CFG fingerprint.\n",
                     drift.total());
        printShardVersionCensus(prof, target.identityHash);
        return 1;
    }

    // Ground truth: a fresh profile of the drifted build.
    profile::Profile fresh_prof =
        sim::run(target, workload::profileOptions(cfg)).profile;
    core::WpaResult fresh =
        core::runWholeProgramAnalysis(target, fresh_prof, {}, g_jobs);

    core::WpaResult stale_wpa;
    stale::StaleMatchStats match;
    bool via_matcher = false;
    if (!mismatch) {
        stale_wpa = core::runWholeProgramAnalysis(target, prof, {}, g_jobs);
    } else {
        stale::StaleWpaResult swr = stale::runStaleWholeProgramAnalysis(
            target, profiled, prof, {}, g_jobs);
        stale_wpa = std::move(swr.wpa);
        match = swr.match;
        via_matcher = true;
    }

    // Relink the drifted build three ways: baseline order, fresh-profile
    // layout, stale-profile layout.
    auto optimized = [&](const core::WpaResult &wpa, const char *suffix) {
        codegen::Options oc;
        oc.emitAddrMapSection = true;
        oc.bbSections = codegen::BbSectionsMode::Clusters;
        codegen::ClusterMap clusters = wpa.ccProf.clusters;
        codegen::sanitizeClusterMap(drifted, clusters);
        oc.clusters = &clusters;
        linker::Options lo;
        lo.entrySymbol = drifted.entryFunction;
        lo.symbolOrder = wpa.ldProf.symbolOrder;
        lo.stripAddrMaps = true;
        lo.outputName = cfg.name + suffix;
        return linker::link(codegen::compileProgram(drifted, oc), lo);
    };
    linker::Options bopts;
    bopts.entrySymbol = drifted.entryFunction;
    bopts.stripAddrMaps = true;
    bopts.outputName = cfg.name + ".base-drift";
    linker::Executable base_exe = linker::link(objects, bopts);
    linker::Executable fresh_exe = optimized(fresh, ".po-fresh");
    linker::Executable stale_exe = optimized(stale_wpa, ".po-stale");

    std::printf("drifted build: %u mutations at %.0f%% drift, text %s\n",
                drift.total(), g_stale_pct,
                formatBytes(base_exe.sizes.text).c_str());
    if (via_matcher)
        std::printf("stale match: %.1f%% of blocks (%.1f%% of weight), "
                    "%u identical + %u matched + %u dropped functions\n",
                    match.blockMatchRate() * 100.0,
                    match.weightMatchRate() * 100.0,
                    match.functionsIdentical, match.functionsMatched,
                    match.functionsDropped);
    else
        std::printf("profile identity matches (no drift in layout-"
                    "relevant code); fresh pipeline used\n");

    sim::MachineOptions eopts = workload::evalOptions(cfg);
    sim::RunResult rbase = sim::run(base_exe, eopts);
    sim::RunResult rfresh = sim::run(fresh_exe, eopts);
    sim::RunResult rstale = sim::run(stale_exe, eopts);
    std::printf("\nperformance on the drifted build:\n");
    printCounters("baseline", rbase, rbase);
    printCounters("fresh", rfresh, rbase);
    printCounters("stale", rstale, rbase);

    double fresh_win = static_cast<double>(rbase.counters.cycles()) -
                       static_cast<double>(rfresh.counters.cycles());
    double stale_win = static_cast<double>(rbase.counters.cycles()) -
                       static_cast<double>(rstale.counters.cycles());
    if (fresh_win > 0.0)
        std::printf("\nstale profile retains %.1f%% of the fresh-profile "
                    "cycle win\n",
                    100.0 * stale_win / fresh_win);
    return 0;
}

int
cmdRun(const std::string &name)
{
    workload::WorkloadConfig cfg = namedConfig(name);
    if (g_stale_requested)
        return cmdRunStale(cfg);

    faultinject::FaultSpec fault_spec;
    if (g_fault_requested) {
        auto parsed = faultinject::parseFaultSpec(g_fault_spec);
        if (!parsed.ok()) {
            std::fprintf(stderr, "propeller-cli: bad --fault-inject: %s\n",
                         parsed.status().toString().c_str());
            return usage();
        }
        fault_spec = *parsed;
    }
    faultinject::FaultInjector injector(fault_spec);

    buildsys::Workflow wf(cfg);
    if (g_fault_requested)
        wf.setFaultHooks(&injector);
    std::printf("workload %s: %zu modules, %zu functions, %zu blocks, "
                "text %s\n\n",
                name.c_str(), wf.program().modules.size(),
                wf.program().functionCount(), wf.program().blockCount(),
                formatBytes(wf.baseline().sizes.text).c_str());

    sim::MachineOptions opts = workload::evalOptions(cfg);
    sim::RunResult base = sim::run(wf.baseline(), opts);
    sim::RunResult prop = sim::run(wf.propellerBinary(), opts);
    linker::Executable bo = wf.boltBinary();
    sim::RunResult bolt = sim::run(bo, opts);

    std::printf("performance (identical logical work):\n");
    printCounters("baseline", base, base);
    printCounters("propeller", prop, base);
    if (bolt.startupOk) {
        printCounters("bolt", bolt, base);
    } else {
        std::printf("  %-10s CRASH at startup (integrity checks)\n",
                    "bolt");
    }

    std::printf("\nbuild phases (modelled):\n");
    for (const char *phase :
         {"phase1", "phase2.codegen", "phase2.link", "phase3.collect",
          "phase3.wpa", "phase4.codegen", "phase4.link"}) {
        if (!wf.hasReport(phase))
            continue;
        const buildsys::PhaseReport &r = wf.report(phase);
        std::printf("  %-16s %7.1f min  peak %-9s  %u actions, %u cached\n",
                    phase, r.makespanMinutes(),
                    formatBytes(r.peakActionMemory).c_str(), r.actions,
                    r.cacheHits);
    }
    if (wf.hasRelinkSchedule()) {
        const sched::ScheduleReport &s = wf.relinkSchedule();
        std::printf("\nrelink task graph (%u tasks, %u modelled "
                    "workers):\n"
                    "  makespan %.1fs = %.2fx the critical-path lower "
                    "bound (%.1fs), %.0f%% parallel efficiency, %llu "
                    "steals\n",
                    s.tasksExecuted, s.modelWorkers, s.makespanSec,
                    s.criticalPathRatio(), s.lowerBoundSec,
                    s.parallelEfficiency * 100.0,
                    static_cast<unsigned long long>(s.steals));
        std::printf("  steal hit rate %.2f (%llu probes)\n",
                    s.stealHitRate(),
                    static_cast<unsigned long long>(s.stealAttempts));
        if (!g_trace_out.empty()) {
            if (sched::writeChromeTrace(s, g_trace_out))
                std::printf("  wrote schedule trace to %s\n",
                            g_trace_out.c_str());
            else
                std::printf("  FAILED writing schedule trace to %s\n",
                            g_trace_out.c_str());
        }
    }

    if (g_fault_requested) {
        wf.scrubCache();
        const faultinject::FaultStats &fs = injector.stats();
        std::printf("\nfault injection (%s):\n", g_fault_spec.c_str());
        std::printf("  injected: %u profile shards, %u cache entries, "
                    "%u addr maps, %u exec faults (%u flips, %u "
                    "truncations, %u zero runs)\n",
                    fs.profileShardsCorrupted, fs.cacheEntriesCorrupted,
                    fs.addrMapsCorrupted, fs.actionFailures, fs.bitFlips,
                    fs.truncations, fs.zeroRuns);
        uint32_t retries = 0;
        for (const char *phase : {"phase2.codegen", "phase4.codegen"})
            retries += wf.hasReport(phase) ? wf.report(phase).retries : 0;
        std::printf("  detected: %u shards rejected, %llu cache "
                    "corruptions evicted, %u quarantined in WPA, %u "
                    "action retries\n",
                    wf.report("phase3.collect").quarantined,
                    static_cast<unsigned long long>(
                        wf.cacheStats().corruptions),
                    wf.wpa().stats.quarantined, retries);
        for (const char *phase :
             {"phase2.codegen", "phase2.link", "phase3.collect",
              "phase3.wpa", "phase4.codegen", "phase4.link"}) {
            if (!wf.hasReport(phase))
                continue;
            for (const auto &line : wf.report(phase).failures)
                std::printf("    [%s] %s\n", phase, line.c_str());
        }
    }
    return 0;
}

void
printArtifacts(const core::WpaResult &wpa)
{
    std::printf("# cc_prof.txt — %u hot functions\n%s\n",
                wpa.stats.hotFunctions, wpa.ccProf.serialize().c_str());
    std::printf("# ld_prof.txt\n%s", wpa.ldProf.serialize().c_str());
}

int
cmdWpa(const std::string &name)
{
    workload::WorkloadConfig cfg = namedConfig(name);
    buildsys::Workflow wf(cfg);

    if (!g_stale_requested) {
        const core::WpaResult &wpa = wf.wpa();
        printArtifacts(wpa);
        std::printf("\n# stats: peak memory %s, dcfg %s, %llu branch + "
                    "%llu fall-through events\n",
                    formatBytes(wpa.stats.peakMemory).c_str(),
                    formatBytes(wpa.stats.dcfgFootprint).c_str(),
                    static_cast<unsigned long long>(
                        wpa.stats.mapper.branchEdges),
                    static_cast<unsigned long long>(
                        wpa.stats.mapper.fallThroughEdges));
        return 0;
    }

    // The stale scenario: the profile comes from this workload's pristine
    // metadata binary, but the binary being optimized has drifted.
    ir::Program drifted = workload::generate(cfg);
    workload::DriftSpec spec;
    spec.seed = cfg.seed + 1;
    spec.rate = g_stale_pct / 100.0;
    workload::DriftStats drift = workload::applyDrift(drifted, spec);

    codegen::Options copts;
    copts.emitAddrMapSection = true;
    linker::Options lopts;
    lopts.entrySymbol = drifted.entryFunction;
    linker::Executable target =
        linker::link(codegen::compileProgram(drifted, copts), lopts);

    const linker::Executable &profiled = wf.metadataBinary();
    const profile::Profile &prof = wf.profile();

    bool mismatch =
        prof.binaryHash != 0 && prof.binaryHash != target.identityHash;
    if (mismatch && !g_allow_stale) {
        std::fprintf(stderr,
                     "propeller-cli: profile identity mismatch: the "
                     "profile was collected on binary %016llx but the "
                     "target binary is %016llx (%u drift mutations).\n"
                     "Applying it by address would mis-attribute counts; "
                     "rerun with --allow-stale to match it by CFG "
                     "fingerprint instead.\n",
                     static_cast<unsigned long long>(prof.binaryHash),
                     static_cast<unsigned long long>(target.identityHash),
                     drift.total());
        printShardVersionCensus(prof, target.identityHash);
        return 1;
    }

    if (!mismatch) {
        // Same build after all (e.g. --stale-profile 0): fresh pipeline.
        core::WpaResult wpa =
            core::runWholeProgramAnalysis(target, prof, {}, g_jobs);
        printArtifacts(wpa);
        return 0;
    }

    stale::StaleWpaResult swr = stale::runStaleWholeProgramAnalysis(
        target, profiled, prof, {}, g_jobs);
    printArtifacts(swr.wpa);
    std::printf("\n# stale match: %.1f%% of blocks (%.1f%% of weight), "
                "%u identical + %u matched + %u dropped functions\n",
                swr.match.blockMatchRate() * 100.0,
                swr.match.weightMatchRate() * 100.0,
                swr.match.functionsIdentical, swr.match.functionsMatched,
                swr.match.functionsDropped);
    std::printf("# inference: %u functions, %llu blocks given counts, "
                "%llu edges rerouted, %llu edges added\n",
                swr.inference.functionsInferred,
                static_cast<unsigned long long>(swr.inference.nodesAdded),
                static_cast<unsigned long long>(
                    swr.inference.edgesRerouted),
                static_cast<unsigned long long>(swr.inference.edgesAdded));
    return 0;
}

int
cmdVerify(const std::string &name)
{
    workload::WorkloadConfig cfg = namedConfig(name);
    buildsys::Workflow wf(cfg);

    // IR invariants first — findings are typed support::Status now, so
    // a violation names both its category and the offending construct.
    std::vector<support::Status> ir_errors = ir::verifyAll(wf.program());
    if (!ir_errors.empty()) {
        for (const auto &status : ir_errors)
            std::fprintf(stderr, "ir: %s\n", status.toString().c_str());
        std::fprintf(stderr, "propeller-cli: IR verification failed "
                             "(%zu violations)\n",
                     ir_errors.size());
        return 1;
    }

    // The canonical phase-5 pass (twin relink + all machine checks) —
    // or the same machine checks aimed at the BOLT rewrite — refiltered
    // through the user's suppression list.
    if (g_backend != "propeller" && g_backend != "bolt") {
        std::fprintf(stderr, "propeller-cli: unknown --backend '%s'\n",
                     g_backend.c_str());
        return usage();
    }
    analysis::VerifyReport bolt_full;
    if (g_backend == "bolt")
        bolt_full = wf.verifyBoltBinary();
    const analysis::VerifyReport &full =
        g_backend == "bolt" ? bolt_full : wf.verifyReport();
    analysis::VerifyReport rep;
    if (!rep.engine.parseSuppressions(g_suppress)) {
        std::fprintf(stderr,
                     "propeller-cli: bad --suppress list '%s'\n",
                     g_suppress.c_str());
        return usage();
    }
    for (const auto &d : full.engine.diagnostics())
        rep.engine.report(d.id, d.severity, d.function, d.address,
                          d.message);
    rep.functionsChecked = full.functionsChecked;
    rep.rangesDecoded = full.rangesDecoded;
    rep.handAsmSkipped = full.handAsmSkipped;
    rep.instructionsDecoded = full.instructionsDecoded;
    rep.bytesVerified = full.bytesVerified;

    if (g_json) {
        std::printf("%s\n", rep.engine.renderJson().c_str());
    } else {
        std::string target_name = g_backend == "bolt"
                                      ? cfg.name + ".bolt"
                                      : wf.propellerBinary().name;
        std::printf("verified %s: %u functions, %u ranges, %llu "
                    "instructions, %s of text\n",
                    target_name.c_str(),
                    rep.functionsChecked, rep.rangesDecoded,
                    static_cast<unsigned long long>(
                        rep.instructionsDecoded),
                    formatBytes(rep.bytesVerified).c_str());
        std::printf("%s", rep.engine.renderText().c_str());
    }
    return rep.engine.errorCount() > 0 ? 1 : 0;
}

int
cmdDisasm(const std::string &name, const std::string &symbol)
{
    buildsys::Workflow wf(namedConfig(name));
    const linker::Executable &exe = wf.propellerBinary();
    bool found = false;
    for (const auto &sym : exe.symbols) {
        if (sym.name != symbol && sym.parentFunction != symbol)
            continue;
        found = true;
        std::printf("%s  [0x%llx, 0x%llx):\n", sym.name.c_str(),
                    static_cast<unsigned long long>(sym.start),
                    static_cast<unsigned long long>(sym.end));
        uint64_t pc = sym.start;
        while (pc < sym.end) {
            auto inst = isa::decode(exe.text.data() + (pc - exe.textBase),
                                    sym.end - pc);
            if (!inst) {
                std::printf("  %llx:  <data>\n",
                            static_cast<unsigned long long>(pc));
                break;
            }
            std::printf("  %llx:  %s\n",
                        static_cast<unsigned long long>(pc),
                        inst->toString().c_str());
            pc += inst->size();
        }
    }
    if (!found) {
        std::printf("no symbol '%s' in %s\n", symbol.c_str(),
                    name.c_str());
        return 1;
    }
    return 0;
}

int
cmdHeatmap(const std::string &name)
{
    workload::WorkloadConfig cfg = namedConfig(name);
    buildsys::Workflow wf(cfg);
    sim::MachineOptions opts = workload::evalOptions(cfg);
    opts.recordHeatMap = true;
    opts.heatAddrBuckets = 24;
    opts.heatTimeBuckets = 64;
    sim::RunResult base = sim::run(wf.baseline(), opts);
    sim::RunResult prop = sim::run(wf.propellerBinary(), opts);
    std::printf("baseline:\n%s\npropeller:\n%s",
                renderHeatMap(base.heatMap, "addr", "time").c_str(),
                renderHeatMap(prop.heatMap, "addr", "time").c_str());
    return 0;
}

/**
 * `serve <workload>`: the continuous-profiling fleet loop — stream
 * shards from a mixed-version fleet, fold the recency-weighted
 * aggregate, relink on drift-threshold crossings, print statusz.
 * With --chaos the transport and relinks run under a seeded chaos
 * schedule; --canary-at/--rollback-at model a mid-run canary rollout
 * that gets rolled back through the runtime fleet-config API.
 */
int
cmdServe(const std::string &name)
{
    fleet::FleetOptions fo;
    fo.base = namedConfig(name);
    fo.machines = g_machines;
    fo.versions = g_versions;
    fo.interVersionDrift = g_drift_pct / 100.0;
    fo.driftThreshold = g_drift_threshold;
    fo.decay = g_decay;
    fo.cachePath = g_cache_path;
    fo.weightedDrift = g_weighted_drift;

    std::unique_ptr<faultinject::ChaosSchedule> chaos;
    if (g_chaos_requested) {
        support::StatusOr<faultinject::ChaosSpec> spec =
            faultinject::parseChaosSpec(g_chaos_spec);
        if (!spec.ok()) {
            std::printf("propeller-cli: bad --chaos spec: %s\n",
                        spec.status().toString().c_str());
            return 2;
        }
        // Delays past the decay window would double-attribute (expired
        // *and* lost); clamp so injected == detected holds.
        faultinject::ChaosSpec cs = *spec;
        cs.maxDelayEpochs =
            std::min(cs.maxDelayEpochs, fo.decayWindow);
        chaos = std::make_unique<faultinject::ChaosSchedule>(cs);
    }

    std::printf("fleet service: %u machine(s) on %u version(s) of %s, "
                "drift threshold %.3f (%s)%s\n",
                fo.machines, fo.versions, name.c_str(), fo.driftThreshold,
                fo.weightedDrift ? "size-weighted" : "unweighted",
                chaos ? ", chaos on" : "");

    const uint32_t decayWindow = fo.decayWindow;
    fleet::FleetService service(std::move(fo));
    if (chaos)
        service.setChaosHooks(chaos.get());

    unsigned canaryVersion = ~0u;
    for (unsigned e = 0; e < g_epochs; ++e) {
        if (e == g_canary_at) {
            canaryVersion = service.addVersion();
            service.setTargetVersion(canaryVersion);
            std::printf("epoch %2u: canary v%u added and targeted\n", e,
                        canaryVersion);
        }
        if (e == g_rollback_at && canaryVersion != ~0u &&
            !service.versionRetired(canaryVersion)) {
            service.retireVersion(canaryVersion);
            std::printf("epoch %2u: canary v%u rolled back (target back "
                        "to v%u)\n",
                        e, canaryVersion, service.targetVersion());
        }
        service.stepEpoch();
        const fleet::EpochStats &es = service.history().back();
        std::printf("epoch %2u: %3u shard(s) in, %u rejected, %u dup, "
                    "%u late, %u lost, lag peak %u, drift %.4f%s%s%s\n",
                    es.epoch, es.shardsIngested, es.shardsRejected,
                    es.shardsDuplicated, es.shardsLate, es.shardsLost,
                    es.shardLagPeak, es.driftMetric,
                    es.relinked ? "  -> relink" : "",
                    es.relinkRetried ? "  -> relink retry" : "",
                    service.degraded() ? "  [degraded]" : "");
    }

    std::string page = fleet::renderStatuszText(service);
    std::printf("\n%s", page.c_str());

    if (chaos) {
        const faultinject::ChaosStats &cs = chaos->stats();
        std::printf("\nchaos injected: %llu dropped, %llu duplicated, "
                    "%llu delayed (max %u epoch(s)), %llu corrupted, "
                    "%llu relink fault(s)\n",
                    static_cast<unsigned long long>(cs.shardsDropped),
                    static_cast<unsigned long long>(cs.shardsDuplicated),
                    static_cast<unsigned long long>(cs.shardsDelayed),
                    cs.maxDelayInjected,
                    static_cast<unsigned long long>(cs.shardsCorrupted),
                    static_cast<unsigned long long>(cs.relinkFaults));
        (void)decayWindow;
    }

    if (!g_statusz_out.empty()) {
        support::Status st =
            fleet::writeStatuszFile(service, g_statusz_out);
        if (!st.ok()) {
            std::printf("propeller-cli: %s\n", st.toString().c_str());
            return 2;
        }
        std::printf("statusz JSON written to %s\n", g_statusz_out.c_str());
    }
    return 0;
}

int
usage()
{
    std::printf("usage: propeller-cli [--jobs N] <command> [args]\n"
                "  list\n"
                "  run <workload>\n"
                "  wpa <workload>\n"
                "  verify <workload>\n"
                "  disasm <workload> <symbol>\n"
                "  heatmap <workload>\n"
                "  serve <workload>\n"
                "options:\n"
                "  --jobs N            worker threads for every parallel\n"
                "                      stage: layout, codegen, link\n"
                "                      assembly, verification\n"
                "                      (default: all hardware threads)\n"
                "  --scheduler S       relink engine: taskgraph (default)\n"
                "                      or barrier (phase-barriered\n"
                "                      ablation; identical artifacts)\n"
                "  --backend B         verify: propeller (default) or\n"
                "                      bolt — aim the static verifier at\n"
                "                      the chosen optimizer's output\n"
                "  --stale-profile N   run/wpa: apply the profile to a\n"
                "                      binary drifted N%% from the\n"
                "                      profiled one\n"
                "  --allow-stale       accept a mismatched profile and\n"
                "                      match it by CFG fingerprint\n"
                "  --fault-inject S    run: seeded corruption spec, e.g.\n"
                "                      seed=7,profile=0.25,cache=0.25,\n"
                "                      addrmap=0.25,exec=0.1\n"
                "  --suppress LIST     verify: mute check ids, e.g.\n"
                "                      PV004,PV011\n"
                "  --json              verify: emit the JSON report\n"
                "  --trace-out FILE    run: write the modelled relink\n"
                "                      schedule as Chrome trace_event\n"
                "                      JSON (open in chrome://tracing\n"
                "                      or https://ui.perfetto.dev)\n"
                "  --machines N        serve: fleet machines (default 8)\n"
                "  --epochs N          serve: profiling epochs to run\n"
                "                      (default 8)\n"
                "  --versions N        serve: binary versions in the\n"
                "                      drift chain (default 3)\n"
                "  --drift N           serve: inter-version drift %%\n"
                "                      (default 10)\n"
                "  --drift-threshold X serve: relink when the drift\n"
                "                      metric exceeds X (default 0.15)\n"
                "  --decay D           serve: per-epoch sample decay in\n"
                "                      (0, 1] (default 0.5)\n"
                "  --cache FILE        serve: artifact-cache image path\n"
                "                      (persists across restarts;\n"
                "                      journaled + generation-stamped —\n"
                "                      a torn image cold-starts cleanly)\n"
                "  --statusz-out FILE  serve: write the statusz page as\n"
                "                      JSON\n"
                "  --weighted-drift    serve: weight the drift metric by\n"
                "                      block byte size\n"
                "  --chaos S           serve: seeded shard-stream chaos\n"
                "                      spec, e.g. seed=7,drop=0.1,\n"
                "                      dup=0.1,delay=0.2,maxdelay=2,\n"
                "                      corrupt=0.1,reorder=0.25,\n"
                "                      blackout=4:5\n"
                "  --canary-at E       serve: add a new version at epoch\n"
                "                      E and target it (canary rollout)\n"
                "  --rollback-at R     serve: retire the canary at epoch\n"
                "                      R (rollback to last-good chain)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    // Consume global options before the subcommand.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            char *end = nullptr;
            unsigned long n = std::strtoul(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::printf("propeller-cli: --jobs expects a number, got "
                            "'%s'\n",
                            argv[i]);
                return usage();
            }
            g_jobs = static_cast<unsigned>(n);
            continue;
        }
        if (arg == "--scheduler" && i + 1 < argc) {
            std::string mode = argv[++i];
            if (mode != "taskgraph" && mode != "barrier") {
                std::printf("propeller-cli: --scheduler expects "
                            "'taskgraph' or 'barrier', got '%s'\n",
                            mode.c_str());
                return usage();
            }
            g_barrier = mode == "barrier";
            continue;
        }
        if (arg == "--backend" && i + 1 < argc) {
            g_backend = argv[++i];
            continue;
        }
        if (arg == "--stale-profile" && i + 1 < argc) {
            char *end = nullptr;
            double pct = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || pct < 0.0 ||
                pct > 100.0) {
                std::printf("propeller-cli: --stale-profile expects a "
                            "percentage in [0, 100], got '%s'\n",
                            argv[i]);
                return usage();
            }
            g_stale_pct = pct;
            g_stale_requested = true;
            continue;
        }
        if (arg == "--allow-stale") {
            g_allow_stale = true;
            continue;
        }
        if (arg == "--fault-inject" && i + 1 < argc) {
            g_fault_spec = argv[++i];
            g_fault_requested = true;
            continue;
        }
        if (arg == "--suppress" && i + 1 < argc) {
            g_suppress = argv[++i];
            continue;
        }
        if (arg == "--json") {
            g_json = true;
            continue;
        }
        if (arg == "--trace-out" && i + 1 < argc) {
            g_trace_out = argv[++i];
            continue;
        }
        auto parseCount = [&](const char *flag, unsigned &out) {
            char *end = nullptr;
            unsigned long n = std::strtoul(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || n == 0) {
                std::printf("propeller-cli: %s expects a positive "
                            "number, got '%s'\n",
                            flag, argv[i]);
                return false;
            }
            out = static_cast<unsigned>(n);
            return true;
        };
        auto parseReal = [&](const char *flag, double lo, double hi,
                             double &out) {
            char *end = nullptr;
            double x = std::strtod(argv[i], &end);
            if (end == argv[i] || *end != '\0' || x < lo || x > hi) {
                std::printf("propeller-cli: %s expects a number in "
                            "[%g, %g], got '%s'\n",
                            flag, lo, hi, argv[i]);
                return false;
            }
            out = x;
            return true;
        };
        if (arg == "--machines" && i + 1 < argc) {
            ++i;
            if (!parseCount("--machines", g_machines))
                return usage();
            continue;
        }
        if (arg == "--epochs" && i + 1 < argc) {
            ++i;
            if (!parseCount("--epochs", g_epochs))
                return usage();
            continue;
        }
        if (arg == "--versions" && i + 1 < argc) {
            ++i;
            if (!parseCount("--versions", g_versions))
                return usage();
            continue;
        }
        if (arg == "--drift" && i + 1 < argc) {
            ++i;
            if (!parseReal("--drift", 0.0, 100.0, g_drift_pct))
                return usage();
            continue;
        }
        if (arg == "--drift-threshold" && i + 1 < argc) {
            ++i;
            if (!parseReal("--drift-threshold", 0.0, 1.0,
                           g_drift_threshold))
                return usage();
            continue;
        }
        if (arg == "--decay" && i + 1 < argc) {
            ++i;
            if (!parseReal("--decay", 0.0, 1.0, g_decay) || g_decay == 0.0) {
                if (g_decay == 0.0)
                    std::printf("propeller-cli: --decay expects a number in "
                                "(0, 1], got '%s'\n",
                                argv[i]);
                return usage();
            }
            continue;
        }
        if (arg == "--cache" && i + 1 < argc) {
            g_cache_path = argv[++i];
            continue;
        }
        if (arg == "--statusz-out" && i + 1 < argc) {
            g_statusz_out = argv[++i];
            continue;
        }
        if (arg == "--chaos" && i + 1 < argc) {
            g_chaos_spec = argv[++i];
            g_chaos_requested = true;
            continue;
        }
        if (arg == "--weighted-drift") {
            g_weighted_drift = true;
            continue;
        }
        if (arg == "--canary-at" && i + 1 < argc) {
            ++i;
            unsigned at = 0;
            if (!parseCount("--canary-at", at))
                return usage();
            g_canary_at = at;
            continue;
        }
        if (arg == "--rollback-at" && i + 1 < argc) {
            ++i;
            unsigned at = 0;
            if (!parseCount("--rollback-at", at))
                return usage();
            g_rollback_at = at;
            continue;
        }
        args.push_back(std::move(arg));
    }
    if (args.empty())
        return usage();
    const std::string &cmd = args[0];
    if (cmd == "list")
        return cmdList();
    if (cmd == "run" && args.size() == 2)
        return cmdRun(args[1]);
    if (cmd == "wpa" && args.size() == 2)
        return cmdWpa(args[1]);
    if (cmd == "verify" && args.size() == 2)
        return cmdVerify(args[1]);
    if (cmd == "disasm" && args.size() == 3)
        return cmdDisasm(args[1], args[2]);
    if (cmd == "heatmap" && args.size() == 2)
        return cmdHeatmap(args[1]);
    if (cmd == "serve" && args.size() == 2)
        return cmdServe(args[1]);
    return usage();
}
