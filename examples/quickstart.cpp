/**
 * @file
 * Quickstart: the whole Propeller workflow on a ten-line program.
 *
 * Walks the paper's four phases end to end against a tiny hand-written
 * program, printing every intermediate artifact:
 *
 *   Phase 1/2: compile the IR with BB-address-map metadata and link;
 *   Phase 3:   run it under the machine simulator collecting LBR samples,
 *              then run the whole-program analysis to get cc_prof/ld_prof;
 *   Phase 4:   re-run codegen with basic block sections and relink with
 *              the symbol order;
 *   finally:   run baseline and optimized binaries on identical inputs
 *              and compare cycles.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "codegen/codegen.h"
#include "ir/verifier.h"
#include "linker/linker.h"
#include "propeller/propeller.h"
#include "sim/machine.h"

using namespace propeller;

namespace {

/** main() loops calling work(); work() has a hot path and a cold path. */
ir::Program
makeProgram()
{
    using namespace ir;
    Program program;
    program.name = "quickstart";
    program.entryFunction = "main";
    auto mod = std::make_unique<Module>();
    mod->name = "app";

    auto work = std::make_unique<Function>();
    work->name = "work";
    for (uint32_t id = 0; id < 4; ++id) {
        auto bb = std::make_unique<BasicBlock>();
        bb->id = id;
        work->blocks.push_back(std::move(bb));
    }
    // bb0: branch to the *cold* path with probability 8/256 — but the
    // stale baseline laid the cold path (bb1) right after bb0.
    work->blocks[0]->insts = {makeWork(1, 1),
                              makeCondBr(/*true=*/1, /*false=*/2,
                                         /*bias=*/8, /*id=*/1)};
    work->blocks[1]->insts = {makeWork(2, 2), makeWork(2, 3),
                              makeWork(2, 4), makeBr(3)}; // Cold.
    work->blocks[2]->insts = {makeWork(3, 5), makeBr(3)}; // Hot.
    work->blocks[3]->insts = {makeWork(4, 6), makeRet()};

    auto main_fn = std::make_unique<Function>();
    main_fn->name = "main";
    for (uint32_t id = 0; id < 4; ++id) {
        auto bb = std::make_unique<BasicBlock>();
        bb->id = id;
        main_fn->blocks.push_back(std::move(bb));
    }
    // Two nested request loops so runs are budget-bound and stable.
    main_fn->blocks[0]->insts = {makeWork(0, 0), makeBr(1)};
    main_fn->blocks[1]->insts = {makeCall("work"),
                                 makeLoopBr(1, 2, 200, /*id=*/2)};
    main_fn->blocks[2]->insts = {makeWork(0, 9),
                                 makeLoopBr(1, 3, 200, /*id=*/3)};
    main_fn->blocks[3]->insts = {makeRet()};

    mod->functions.push_back(std::move(work));
    mod->functions.push_back(std::move(main_fn));
    program.modules.push_back(std::move(mod));
    return program;
}

} // namespace

int
main()
{
    std::printf("== Propeller quickstart ==\n\n");

    ir::Program program = makeProgram();
    support::Status status = ir::verify(program);
    if (!status.ok()) {
        std::printf("IR invalid: %s\n", status.toString().c_str());
        return 1;
    }

    // ---- Phases 1 & 2: compile with metadata, link ----------------------
    codegen::Options copts;
    copts.emitAddrMapSection = true;
    auto objects = codegen::compileProgram(program, copts);
    std::printf("Phase 1/2: compiled %zu object(s); object sections:\n",
                objects.size());
    for (const auto &sec : objects[0].sections)
        std::printf("  %-18s %llu bytes\n", sec.name.c_str(),
                    static_cast<unsigned long long>(sec.size()));

    linker::Options lopts;
    lopts.entrySymbol = "main";
    linker::Executable metadata = linker::link(objects, lopts);
    std::printf("  linked: text=%llu bytes, entry=0x%llx\n\n",
                static_cast<unsigned long long>(metadata.text.size()),
                static_cast<unsigned long long>(metadata.entryAddress));

    // ---- Phase 3: profile + whole-program analysis ----------------------
    sim::MachineOptions popts;
    popts.seed = 11;
    popts.maxInstructions = 200'000;
    popts.collectLbr = true;
    popts.lbrSamplePeriod = 500;
    sim::RunResult profiled = sim::run(metadata, popts);
    std::printf("Phase 3: collected %zu LBR samples over %llu retired "
                "instructions\n",
                profiled.profile.samples.size(),
                static_cast<unsigned long long>(
                    profiled.counters.instructions));

    core::WpaResult wpa =
        core::runWholeProgramAnalysis(metadata, profiled.profile);
    std::printf("  cc_prof.txt:\n%s", wpa.ccProf.serialize().c_str());
    std::printf("  ld_prof.txt:\n%s\n", wpa.ldProf.serialize().c_str());

    // ---- Phase 4: relink with basic block sections -----------------------
    codegen::Options copts2;
    copts2.bbSections = codegen::BbSectionsMode::Clusters;
    copts2.clusters = &wpa.ccProf.clusters;
    copts2.emitAddrMapSection = true;
    auto objects2 = codegen::compileProgram(program, copts2);
    linker::Options lopts2;
    lopts2.entrySymbol = "main";
    lopts2.symbolOrder = wpa.ldProf.symbolOrder;
    linker::LinkStats link_stats;
    linker::Executable optimized =
        linker::link(objects2, lopts2, &link_stats);
    std::printf("Phase 4: relinked with %u sections, %u branches shrunk, "
                "%u fall-throughs deleted\n",
                link_stats.sectionsLinked, link_stats.branchesShrunk,
                link_stats.fallThroughsDeleted);
    for (const auto &sym : optimized.symbols)
        std::printf("  %-12s [0x%llx, 0x%llx)\n", sym.name.c_str(),
                    static_cast<unsigned long long>(sym.start),
                    static_cast<unsigned long long>(sym.end));

    // ---- Compare ----------------------------------------------------------
    sim::MachineOptions eopts;
    eopts.seed = 99;
    eopts.maxInstructions = 200'000;
    linker::Options base_opts;
    base_opts.entrySymbol = "main";
    base_opts.stripAddrMaps = true;
    linker::Executable baseline = linker::link(objects, base_opts);

    sim::RunResult rb = sim::run(baseline, eopts);
    sim::RunResult ro = sim::run(optimized, eopts);
    std::printf("\nbaseline : %llu cycles, %llu taken branches\n",
                static_cast<unsigned long long>(rb.counters.cycles()),
                static_cast<unsigned long long>(rb.counters.takenBranches));
    std::printf("propeller: %llu cycles, %llu taken branches  (%+.2f%%)\n",
                static_cast<unsigned long long>(ro.counters.cycles()),
                static_cast<unsigned long long>(ro.counters.takenBranches),
                100.0 * (static_cast<double>(rb.counters.cycles()) /
                             static_cast<double>(ro.counters.cycles()) -
                         1.0));
    std::printf("\nidentical logical work: %llu vs %llu instructions\n",
                static_cast<unsigned long long>(
                    rb.counters.logicalInstructions),
                static_cast<unsigned long long>(
                    ro.counters.logicalInstructions));
    std::printf("\n(a program this small fits every cache, so the win "
                "here is the taken-branch\nreduction; run the bench_* "
                "binaries for the paper-scale results)\n");
    return 0;
}
