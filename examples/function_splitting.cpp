/**
 * @file
 * Low-overhead function splitting with basic block sections (paper 4.6).
 *
 * Builds one function whose body is half cold error handling — the shape
 * the Google fleet study found in half of all hot functions — and shows
 * exactly what the basic-block-sections mechanism does to it:
 *
 *   - the object file grows a `.text.handler.cold` section whose symbol
 *     the linker can place anywhere;
 *   - no call-thunk overhead is added (contrast with heuristic-based
 *     splitting, Figure 2 of the paper);
 *   - the hot primary section shrinks below the i-cache line budget and
 *     front-end stalls drop.
 *
 * Build & run:  ./build/examples/function_splitting
 */

#include <cstdio>

#include "codegen/codegen.h"
#include "ir/verifier.h"
#include "linker/linker.h"
#include "propeller/propeller.h"
#include "sim/machine.h"

using namespace propeller;

namespace {

ir::Program
makeProgram()
{
    using namespace ir;
    Program program;
    program.name = "splitting";
    program.entryFunction = "main";
    auto mod = std::make_unique<Module>();
    mod->name = "server";

    // handler(): entry dispatches across four hot blocks, each guarded by
    // a rarely-taken error path of several blocks (inlined right there,
    // as a profile-less compiler would).
    auto handler = std::make_unique<Function>();
    handler->name = "handler";
    uint32_t next_id = 0;
    auto block = [&]() {
        auto bb = std::make_unique<BasicBlock>();
        bb->id = next_id++;
        handler->blocks.push_back(std::move(bb));
        return handler->blocks.back()->id;
    };
    uint32_t branch_id = 100;
    uint32_t prev = block(); // Entry.
    handler->blocks[prev]->insts = {makeWork(0, 1)};
    for (int region = 0; region < 4; ++region) {
        uint32_t cold1 = block();
        uint32_t cold2 = block();
        uint32_t join = block();
        // Rare error path: two blocks of cleanup code.
        handler->blocks[prev]->insts.push_back(
            makeCondBr(cold1, join, /*bias=*/2, branch_id++));
        handler->blocks[cold1]->insts = {makeWork(1, 10), makeWork(1, 11),
                                         makeWork(1, 12), makeBr(cold2)};
        handler->blocks[cold2]->insts = {makeWork(1, 13), makeWork(1, 14),
                                         makeRet()};
        handler->blocks[join]->insts = {makeWork(2, 20), makeWork(2, 21)};
        prev = join;
    }
    handler->blocks[prev]->insts.push_back(makeRet());

    auto main_fn = std::make_unique<Function>();
    main_fn->name = "main";
    for (uint32_t id = 0; id < 3; ++id) {
        auto bb = std::make_unique<BasicBlock>();
        bb->id = id;
        main_fn->blocks.push_back(std::move(bb));
    }
    main_fn->blocks[0]->insts = {ir::makeBr(1)};
    main_fn->blocks[1]->insts = {ir::makeCall("handler"),
                                 ir::makeLoopBr(1, 2, 250, 1)};
    main_fn->blocks[2]->insts = {ir::makeRet()};

    mod->functions.push_back(std::move(handler));
    mod->functions.push_back(std::move(main_fn));
    program.modules.push_back(std::move(mod));
    return program;
}

void
printSections(const char *label, const std::vector<elf::ObjectFile> &objs)
{
    std::printf("%s\n", label);
    for (const auto &sec : objs[0].sections) {
        if (sec.type == elf::SectionType::Text) {
            std::printf("  %-24s %4llu bytes\n", sec.name.c_str(),
                        static_cast<unsigned long long>(sec.size()));
        }
    }
}

} // namespace

int
main()
{
    std::printf("== Function splitting with basic block sections ==\n\n");
    ir::Program program = makeProgram();
    if (support::Status status = ir::verify(program); !status.ok()) {
        std::printf("IR invalid: %s\n", status.toString().c_str());
        return 1;
    }

    codegen::Options meta;
    meta.emitAddrMapSection = true;
    auto base_objs = codegen::compileProgram(program, meta);
    printSections("before (function sections):", base_objs);

    linker::Options lopts;
    lopts.entrySymbol = "main";
    linker::Executable metadata = linker::link(base_objs, lopts);

    // Profile and compute the layout.
    sim::MachineOptions popts;
    popts.maxInstructions = 300'000;
    popts.collectLbr = true;
    popts.lbrSamplePeriod = 400;
    sim::RunResult profiled = sim::run(metadata, popts);
    core::WpaResult wpa =
        core::runWholeProgramAnalysis(metadata, profiled.profile);

    codegen::Options split;
    split.bbSections = codegen::BbSectionsMode::Clusters;
    split.clusters = &wpa.ccProf.clusters;
    split.emitAddrMapSection = true;
    auto split_objs = codegen::compileProgram(program, split);
    std::printf("\n");
    printSections("after (profile-driven clusters):", split_objs);
    std::printf("\n  note: no call thunks, no extra instructions in the "
                "hot path — the cold\n  cluster is just another section "
                "the linker places far away (paper Fig. 2).\n\n");

    linker::Options lopts2 = lopts;
    lopts2.symbolOrder = wpa.ldProf.symbolOrder;
    linker::Executable optimized = linker::link(split_objs, lopts2);

    sim::MachineOptions eopts;
    eopts.seed = 5;
    eopts.maxInstructions = 300'000;
    sim::RunResult rb = sim::run(linker::link(base_objs, lopts), eopts);
    sim::RunResult rs = sim::run(optimized, eopts);
    std::printf("i-cache misses: %llu -> %llu;  cycles: %llu -> %llu "
                "(%+.2f%%)\n",
                static_cast<unsigned long long>(rb.counters.l1iMisses),
                static_cast<unsigned long long>(rs.counters.l1iMisses),
                static_cast<unsigned long long>(rb.counters.cycles()),
                static_cast<unsigned long long>(rs.counters.cycles()),
                100.0 * (static_cast<double>(rb.counters.cycles()) /
                             static_cast<double>(rs.counters.cycles()) -
                         1.0));
    return 0;
}
