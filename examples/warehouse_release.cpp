/**
 * @file
 * Warehouse-scale release pipeline: drive a Bigtable-sized application
 * through the full distributed-build workflow — the scenario the paper's
 * introduction motivates.
 *
 * Shows what a release engineer sees: per-phase wall times and memory
 * against the build system's per-action limits, the cache hit rate that
 * makes relinking cheap, the production-safety difference between
 * relinking and binary rewriting (startup integrity checks), and the
 * final performance win.
 *
 * Build & run:  ./build/examples/warehouse_release
 */

#include <cstdio>

#include "build/workflow.h"
#include "sim/machine.h"
#include "support/units.h"

using namespace propeller;

namespace {

void
phase(buildsys::Workflow &wf, const char *name, const char *label)
{
    if (!wf.hasReport(name))
        return;
    const buildsys::PhaseReport &r = wf.report(name);
    std::printf("  %-28s %6.1f min   peak action %-9s %s\n", label,
                r.makespanMinutes(),
                formatBytes(r.peakActionMemory).c_str(),
                r.memoryLimitExceeded ? "** OVER per-action RAM limit **"
                                      : "");
}

} // namespace

int
main()
{
    std::printf("== Releasing a warehouse-scale application with Propeller "
                "==\n\n");
    const workload::WorkloadConfig &cfg =
        workload::configByName("bigtable");
    buildsys::Workflow wf(cfg);
    std::printf("application: %s — %zu modules, %zu functions, %zu basic "
                "blocks\n",
                cfg.name.c_str(), wf.program().modules.size(),
                wf.program().functionCount(), wf.program().blockCount());
    std::printf("build system: distributed, %s per action\n\n",
                formatBytes(wf.limits().ramPerAction).c_str());

    // Run the whole pipeline.
    const linker::Executable &baseline = wf.baseline();
    const linker::Executable &optimized = wf.propellerBinary();

    std::printf("release pipeline:\n");
    phase(wf, "phase1", "compile+cache IR");
    phase(wf, "phase2.codegen", "backends (with metadata)");
    phase(wf, "phase2.link", "link metadata binary");
    phase(wf, "phase3.collect", "hardware profiling (LBR)");
    phase(wf, "phase3.wpa", "profile conversion + WPA");
    phase(wf, "phase4.codegen", "backends (hot objects only)");
    phase(wf, "phase4.link", "relink");

    const buildsys::PhaseReport &p4 = wf.report("phase4.codegen");
    std::printf("\ncold-object reuse: %u of %u objects came from the "
                "content-addressed cache (%.0f%%)\n",
                p4.cacheHits, p4.cacheHits + p4.actions,
                100.0 * p4.cacheHits / (p4.cacheHits + p4.actions));

    // Performance.
    sim::RunResult rb = sim::run(baseline, workload::evalOptions(cfg));
    sim::RunResult rp = sim::run(optimized, workload::evalOptions(cfg));
    std::printf("\nQPS improvement over PGO+ThinLTO baseline: %+.2f%%\n",
                100.0 * (static_cast<double>(rb.counters.cycles()) /
                             static_cast<double>(rp.counters.cycles()) -
                         1.0));

    // Why not a binary rewriter?  This application performs startup
    // integrity checks over its cryptographic module (FIPS 140-2).
    std::printf("\nproduction safety: this application has %zu startup "
                "integrity check(s)\n",
                baseline.integrityChecks.size());
    linker::Executable bolted = wf.boltBinary();
    sim::RunResult rbolt = sim::run(bolted, workload::evalOptions(cfg));
    std::printf("  propeller-relinked binary:  %s\n",
                rp.startupOk ? "starts cleanly (constants regenerated at "
                               "relink)"
                             : "CRASHES");
    std::printf("  BOLT-rewritten binary:      %s\n",
                rbolt.startupOk
                    ? "starts"
                    : "CRASHES at startup (rewriter cannot regenerate the "
                      "baked-in constants)");
    return 0;
}
