/**
 * @file
 * Inter-procedural layout on the paper's Figure 3 scenario.
 *
 * foo() is multi-modal: it branches into one of two loops, each calling a
 * different non-inlined callee.  Intra-procedural layout can keep both
 * callees near foo but not near their call sites; inter-procedural layout
 * splits foo into per-loop sections and interleaves the callees between
 * them.  This example prints both cc_prof/ld_prof outputs and the final
 * symbol maps so the difference is visible byte by byte.
 *
 * Build & run:  ./build/examples/interprocedural_layout
 */

#include <cstdio>

#include "codegen/codegen.h"
#include "ir/verifier.h"
#include "linker/linker.h"
#include "propeller/propeller.h"
#include "sim/machine.h"

using namespace propeller;

namespace {

ir::Program
makeProgram()
{
    using namespace ir;
    Program program;
    program.name = "fig3";
    program.entryFunction = "main";
    auto mod = std::make_unique<Module>();
    mod->name = "fig3_mod";

    auto makeLeaf = [&](const char *name) {
        auto fn = std::make_unique<Function>();
        fn->name = name;
        auto bb = std::make_unique<BasicBlock>();
        bb->id = 0;
        for (int i = 0; i < 8; ++i)
            bb->insts.push_back(makeWork(1, 10 + i));
        bb->insts.push_back(makeRet());
        fn->blocks.push_back(std::move(bb));
        mod->functions.push_back(std::move(fn));
    };
    makeLeaf("callee_a");
    makeLeaf("callee_b");

    // foo: entry -> loop1 (calls callee_a) | loop2 (calls callee_b) -> exit
    auto foo = std::make_unique<Function>();
    foo->name = "foo";
    for (uint32_t id = 0; id < 4; ++id) {
        auto bb = std::make_unique<BasicBlock>();
        bb->id = id;
        foo->blocks.push_back(std::move(bb));
    }
    foo->blocks[0]->insts = {makeWork(0, 1),
                             makeCondBr(1, 2, 128, 500)};
    foo->blocks[1]->insts = {makeWork(2, 2), makeCall("callee_a"),
                             makeLoopBr(1, 3, 24, 501)};
    foo->blocks[2]->insts = {makeWork(3, 3), makeCall("callee_b"),
                             makeLoopBr(2, 3, 24, 502)};
    foo->blocks[3]->insts = {makeWork(4, 4), makeRet()};
    mod->functions.push_back(std::move(foo));

    auto main_fn = std::make_unique<Function>();
    main_fn->name = "main";
    for (uint32_t id = 0; id < 3; ++id) {
        auto bb = std::make_unique<BasicBlock>();
        bb->id = id;
        main_fn->blocks.push_back(std::move(bb));
    }
    main_fn->blocks[0]->insts = {ir::makeBr(1)};
    main_fn->blocks[1]->insts = {ir::makeCall("foo"),
                                 ir::makeLoopBr(1, 2, 250, 503)};
    main_fn->blocks[2]->insts = {ir::makeRet()};
    mod->functions.push_back(std::move(main_fn));

    program.modules.push_back(std::move(mod));
    return program;
}

void
show(const char *label, const core::WpaResult &wpa,
     const ir::Program &program)
{
    std::printf("-- %s --\ncc_prof.txt:\n%sld_prof.txt:\n%s", label,
                wpa.ccProf.serialize().c_str(),
                wpa.ldProf.serialize().c_str());

    codegen::Options copts;
    copts.bbSections = codegen::BbSectionsMode::Clusters;
    copts.clusters = &wpa.ccProf.clusters;
    copts.emitAddrMapSection = true;
    auto objs = codegen::compileProgram(program, copts);
    linker::Options lopts;
    lopts.entrySymbol = "main";
    lopts.symbolOrder = wpa.ldProf.symbolOrder;
    linker::Executable exe = linker::link(objs, lopts);
    std::printf("final layout:\n");
    for (const auto &sym : exe.symbols) {
        std::printf("  0x%06llx  %s\n",
                    static_cast<unsigned long long>(sym.start),
                    sym.name.c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("== Inter-procedural layout (paper Figure 3) ==\n\n");
    ir::Program program = makeProgram();
    if (support::Status status = ir::verify(program); !status.ok()) {
        std::printf("IR invalid: %s\n", status.toString().c_str());
        return 1;
    }

    codegen::Options meta;
    meta.emitAddrMapSection = true;
    auto objs = codegen::compileProgram(program, meta);
    linker::Options lopts;
    lopts.entrySymbol = "main";
    linker::Executable metadata = linker::link(objs, lopts);

    sim::MachineOptions popts;
    popts.maxInstructions = 400'000;
    popts.collectLbr = true;
    popts.lbrSamplePeriod = 300;
    sim::RunResult profiled = sim::run(metadata, popts);

    core::LayoutOptions intra;
    show("intra-procedural",
         core::runWholeProgramAnalysis(metadata, profiled.profile, intra),
         program);

    core::LayoutOptions inter;
    inter.interProcedural = true;
    inter.interProcMinRunBlocks = 1; // Keep even single-block loop runs.
    show("inter-procedural (foo split around its callees)",
         core::runWholeProgramAnalysis(metadata, profiled.profile, inter),
         program);
    return 0;
}
